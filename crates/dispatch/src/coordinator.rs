//! The campaign coordinator: owns the job queue, grants leases, ingests
//! results into the shared [`CheckpointStore`], and re-queues work whose
//! worker went silent.
//!
//! The coordinator never holds a work function or a payload codec — it
//! sees the campaign only through [`JobSource`] (name, seed, keys) and
//! files the verbatim checkpoint lines workers send back. All scheduling
//! state lives in one `Mutex<State>`; connection handler threads lock it
//! per message, and the serve loop's sweeper locks it to reap expired
//! leases, so the protocol needs no cross-thread channels.
//!
//! **Lease lifecycle.** A queued key granted to a worker becomes a lease
//! with a deadline `now + lease_ms`. Heartbeats push the deadline out;
//! a missed deadline (worker crashed, network gone) re-queues the key and
//! charges one retry. A failed result (`panicked`/`timeout` line) also
//! charges a retry and re-queues — the failure line is only written to the
//! store once the retry budget is exhausted, so the final store holds
//! exactly one line per key, like a serial run's checkpoint. Successful
//! results are written immediately and de-duplicated by key, so a stale
//! worker finishing an already-re-run job cannot duplicate or corrupt
//! anything (results are deterministic per key, making either copy
//! byte-identical anyway).

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use thermorl_runner::JobSource;
use thermorl_sim::json::Value;
use thermorl_telemetry as tel;

use crate::proto::{read_message, write_message, Lease, Message, StatusReport, PROTOCOL_VERSION};
use crate::store::{CheckpointStore, Ingest};

/// How a coordinator serves one campaign.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Listen address, e.g. `"127.0.0.1:4077"`; port `0` binds an
    /// ephemeral port (pair with `addr_file` so workers can find it).
    pub addr: String,
    /// When set, the bound address is written here once listening (the
    /// ephemeral-port handshake for scripts and tests).
    pub addr_file: Option<PathBuf>,
    /// Path of the shared checkpoint store (authoritative JSONL).
    pub store: PathBuf,
    /// Keep existing store records and skip their completed keys.
    pub resume: bool,
    /// Lease lifetime without a heartbeat, in milliseconds.
    pub lease_ms: u64,
    /// Interval workers are told to heartbeat at, in milliseconds.
    pub heartbeat_ms: u64,
    /// Times a key may be re-queued (after lease expiry or a failed
    /// result) before it is recorded as permanently failed.
    pub max_retries: u32,
    /// Backoff suggested to workers when nothing is grantable, in ms.
    pub wait_backoff_ms: u64,
    /// After the campaign resolves, keep serving up to this long while
    /// connections drain so every worker's final `lease_request` gets a
    /// clean `done` instead of a dropped socket. Must exceed
    /// `wait_backoff_ms` or a waiting worker can miss the window and
    /// mistake resolution for an outage.
    pub linger_ms: u64,
    /// Print progress lines to stderr.
    pub progress: bool,
    /// Shared-secret auth token. When set, every worker's `hello` must
    /// carry the same token or the handshake is rejected with an error
    /// reply; control clients (status/drain) are unaffected — they bind
    /// to the same trusted network position as the coordinator itself.
    pub auth_token: Option<String>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: "127.0.0.1:4077".into(),
            addr_file: None,
            store: PathBuf::from("results/dispatch.jsonl"),
            resume: false,
            lease_ms: 30_000,
            heartbeat_ms: 5_000,
            max_retries: 2,
            wait_backoff_ms: 500,
            linger_ms: 2_000,
            progress: true,
            auth_token: None,
        }
    }
}

/// Scheduling state of one job key.
#[derive(Debug, Clone, PartialEq, Eq)]
enum KeyState {
    /// Waiting in the queue.
    Queued,
    /// Held by the lease with this id.
    Leased(u64),
    /// A successful record is in the store.
    Completed,
    /// Retry budget exhausted; a failure record is in the store.
    Failed,
}

#[derive(Debug)]
struct JobState {
    seed: u64,
    state: KeyState,
    retries: u32,
    /// The most recent failure line a worker reported, written to the
    /// store verbatim if the retry budget runs out.
    last_failure: Option<String>,
}

#[derive(Debug)]
struct LeaseInfo {
    key: String,
    worker: String,
    deadline: Instant,
    granted: Instant,
}

/// All mutable coordinator state, behind one mutex.
pub(crate) struct State {
    campaign: String,
    seed: u64,
    queue: VecDeque<String>,
    jobs: HashMap<String, JobState>,
    leases: HashMap<u64, LeaseInfo>,
    next_lease_id: u64,
    draining: bool,
    store: CheckpointStore,
    lease_ms: u64,
    max_retries: u32,
    completed: u64,
    failed: u64,
}

impl State {
    fn new(source: &dyn JobSource, store: CheckpointStore, config: &CoordinatorConfig) -> State {
        let mut queue = VecDeque::new();
        let mut jobs = HashMap::new();
        let mut completed = 0u64;
        for key in source.source_keys() {
            let seed = source.source_seed_for(&key);
            let state = if store.is_completed(&key) {
                completed += 1;
                KeyState::Completed
            } else {
                queue.push_back(key.clone());
                KeyState::Queued
            };
            jobs.insert(
                key,
                JobState {
                    seed,
                    state,
                    retries: 0,
                    last_failure: None,
                },
            );
        }
        State {
            campaign: source.source_name().to_string(),
            seed: source.source_seed(),
            queue,
            jobs,
            leases: HashMap::new(),
            next_lease_id: 1,
            draining: false,
            store,
            lease_ms: config.lease_ms,
            max_retries: config.max_retries,
            completed,
            failed: 0,
        }
    }

    fn status(&self) -> StatusReport {
        StatusReport {
            campaign: self.campaign.clone(),
            total: self.jobs.len() as u64,
            completed: self.completed,
            failed: self.failed,
            queued: self.queue.len() as u64,
            leased: self.leases.len() as u64,
            draining: self.draining,
        }
    }

    /// No lease outstanding and nothing left to grant: every key is
    /// resolved, or the coordinator is draining and the in-flight work
    /// has run dry.
    fn resolved(&self) -> bool {
        self.leases.is_empty() && (self.queue.is_empty() || self.draining)
    }

    /// Grants up to `max_jobs` leases to `worker`.
    fn grant(&mut self, worker: &str, max_jobs: u64, now: Instant) -> Vec<Lease> {
        let mut leases = Vec::new();
        if self.draining {
            return leases;
        }
        while (leases.len() as u64) < max_jobs {
            let Some(key) = self.queue.pop_front() else {
                break;
            };
            let job = self.jobs.get_mut(&key).expect("queued key is registered");
            if job.state != KeyState::Queued {
                continue; // resolved while waiting (e.g. a stale result landed)
            }
            let lease_id = self.next_lease_id;
            self.next_lease_id += 1;
            job.state = KeyState::Leased(lease_id);
            self.leases.insert(
                lease_id,
                LeaseInfo {
                    key: key.clone(),
                    worker: worker.to_string(),
                    deadline: now + Duration::from_millis(self.lease_ms),
                    granted: now,
                },
            );
            leases.push(Lease {
                lease_id,
                key,
                seed: job.seed,
                deadline_ms: self.lease_ms,
            });
        }
        if !leases.is_empty() {
            tel::counter!("dispatch.leases_granted", leases.len() as u64);
            tel::gauge!("dispatch.in_flight", self.leases.len() as f64);
            tel::event!("dispatch.grant", "{} lease(s) to {worker}", leases.len());
        }
        leases
    }

    /// Extends the deadlines of the given leases.
    fn heartbeat(&mut self, lease_ids: &[u64], now: Instant) {
        for id in lease_ids {
            if let Some(lease) = self.leases.get_mut(id) {
                lease.deadline = now + Duration::from_millis(self.lease_ms);
            }
        }
        tel::counter!("dispatch.heartbeats");
    }

    /// Re-queues `key` (charging one retry) or, with the budget
    /// exhausted, files `failure_line` and marks the key failed.
    fn requeue_or_fail(&mut self, key: String, failure_line: String) -> io::Result<()> {
        let job = self.jobs.get_mut(&key).expect("key is registered");
        if job.retries < self.max_retries {
            job.retries += 1;
            job.state = KeyState::Queued;
            tel::counter!("dispatch.retries");
            tel::event!("dispatch.retry", "{key} retry={}", job.retries);
            self.queue.push_back(key);
        } else {
            job.state = KeyState::Failed;
            self.failed += 1;
            tel::counter!("dispatch.failures");
            tel::event!("dispatch.failed", "{key} retries exhausted");
            self.store.ingest(&failure_line)?;
        }
        Ok(())
    }

    /// Re-queues every lease whose deadline has passed. Returns how many
    /// expired.
    fn reap_expired(&mut self, now: Instant) -> io::Result<usize> {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            let lease = self.leases.remove(id).expect("collected above");
            tel::counter!("dispatch.lease_expiries");
            tel::event!(
                "dispatch.lease_expired",
                "{} held by {}",
                lease.key,
                lease.worker
            );
            let line = self
                .jobs
                .get(&lease.key)
                .and_then(|j| j.last_failure.clone())
                .unwrap_or_else(|| timeout_line(&lease.key, self.jobs[&lease.key].seed));
            self.requeue_or_fail(lease.key, line)?;
        }
        if !expired.is_empty() {
            tel::gauge!("dispatch.in_flight", self.leases.len() as f64);
        }
        Ok(expired.len())
    }

    /// Files one result line. Resolution is by the line's `"key"` field,
    /// so a result from an expired (and even re-granted) lease still
    /// lands: results are deterministic per key, making every copy
    /// equivalent.
    fn ingest_result(&mut self, lease_id: u64, line: &str, now: Instant) -> io::Result<()> {
        let meta = crate::store::line_meta(line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparsable result line: {line:?}"),
            )
        })?;
        let Some(job) = self.jobs.get_mut(&meta.key) else {
            tel::counter!("dispatch.unknown_results");
            return Ok(()); // not this campaign's key; drop it
        };

        // Release whichever lease currently holds the key — the reporting
        // one if it is still live, or a stale re-grant to another worker
        // (whose eventual duplicate report will be dropped below).
        let held_by = match job.state {
            KeyState::Leased(id) => Some(id),
            _ => None,
        };
        for id in [Some(lease_id), held_by].into_iter().flatten() {
            if let Some(lease) = self.leases.remove(&id) {
                if lease.key == meta.key {
                    tel::observe!(
                        "dispatch.job_ms",
                        now.duration_since(lease.granted).as_millis() as u64
                    );
                } else {
                    // `lease_id` belongs to a different key (a worker bug);
                    // keep that lease alive.
                    self.leases.insert(id, lease);
                }
            }
        }
        tel::gauge!("dispatch.in_flight", self.leases.len() as f64);

        match job.state {
            KeyState::Completed | KeyState::Failed => {
                tel::counter!("dispatch.duplicates");
                return Ok(());
            }
            _ => {}
        }
        let was_queued = self.jobs[&meta.key].state == KeyState::Queued;
        if meta.ok {
            match self.store.ingest(line)? {
                Ingest::Duplicate => {
                    tel::counter!("dispatch.duplicates");
                }
                _ => {
                    tel::counter!("dispatch.results_ingested");
                    tel::event!("dispatch.result", "{} ok", meta.key);
                }
            }
            if was_queued {
                // A stale report resolved a re-queued key; drop the queue
                // entry so it is never re-granted.
                self.queue.retain(|k| k != &meta.key);
            }
            let job = self.jobs.get_mut(&meta.key).expect("checked above");
            job.state = KeyState::Completed;
            self.completed += 1;
        } else {
            tel::event!("dispatch.result", "{} failed", meta.key);
            let job = self.jobs.get_mut(&meta.key).expect("checked above");
            job.last_failure = Some(line.to_string());
            // If the key was already re-queued (its lease expired first),
            // the stale failure only refreshes `last_failure`; charging
            // another retry would double-count one attempt.
            if !was_queued {
                self.requeue_or_fail(meta.key, line.to_string())?;
            }
        }
        Ok(())
    }
}

/// A synthesized `"timeout"` checkpoint line for a job whose worker
/// vanished without reporting anything (same shape a local timed-out job
/// would checkpoint as).
fn timeout_line(key: &str, seed: u64) -> String {
    let mut obj = Value::object();
    obj.set("key", Value::Str(key.to_string()));
    obj.set("seed", Value::UInt(seed));
    obj.set("status", Value::Str("timeout".into()));
    obj.to_json()
}

/// A bound coordinator, ready to serve one campaign.
pub struct Coordinator {
    listener: TcpListener,
    state: Arc<Mutex<State>>,
    config: CoordinatorConfig,
}

fn lock_state(state: &Mutex<State>) -> MutexGuard<'_, State> {
    // A handler thread can only panic on store I/O failure, which `serve`
    // surfaces anyway; the scheduling state itself stays consistent.
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Coordinator {
    /// Opens the store, loads the campaign's keys, and binds the listen
    /// socket (writing `addr_file` if configured).
    ///
    /// # Errors
    ///
    /// Fails if the store cannot be opened or the address cannot be bound.
    pub fn bind(source: &dyn JobSource, config: CoordinatorConfig) -> io::Result<Coordinator> {
        let store = CheckpointStore::open(&config.store, config.resume)?;
        let state = State::new(source, store, &config);
        let listener = TcpListener::bind(&config.addr)?;
        if let Some(path) = &config.addr_file {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(path, listener.local_addr()?.to_string())?;
        }
        Ok(Coordinator {
            listener,
            state: Arc::new(Mutex::new(state)),
            config,
        })
    }

    /// The bound listen address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until the campaign resolves: accepts worker and control
    /// connections, sweeps expired leases, and returns the final status
    /// once no lease is outstanding and the queue is empty (or draining).
    /// After resolution it lingers until every open connection drains (or
    /// `linger_ms` elapses) so workers receive their final `done` instead
    /// of a dropped socket when the coordinator process exits.
    ///
    /// # Errors
    ///
    /// Fails if the listener breaks or the store rejects a write during
    /// expiry handling.
    pub fn serve(self) -> io::Result<StatusReport> {
        self.listener.set_nonblocking(true)?;
        let connections = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut last_progress = (u64::MAX, u64::MAX);
        let mut resolved_since: Option<Instant> = None;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let state = Arc::clone(&self.state);
                    let config = self.config.clone();
                    let connections = Arc::clone(&connections);
                    connections.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    std::thread::Builder::new()
                        .name(format!("dispatch:{peer}"))
                        .spawn(move || {
                            if let Err(e) = handle_connection(stream, &state, &config) {
                                // Disconnects are routine (a killed worker's
                                // socket just vanishes); the lease deadline
                                // is the recovery mechanism.
                                tel::event!("dispatch.disconnect", "{peer}: {e}");
                                let _ = e;
                            }
                            connections.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        })?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
            let mut state = lock_state(&self.state);
            state.reap_expired(Instant::now())?;
            let status = state.status();
            if self.config.progress {
                let snapshot = (status.completed, status.failed);
                if snapshot != last_progress {
                    eprintln!(
                        "[dispatch:{}] {}/{} completed, {} failed, {} queued, {} leased",
                        status.campaign,
                        status.completed,
                        status.total,
                        status.failed,
                        status.queued,
                        status.leased
                    );
                    last_progress = snapshot;
                }
            }
            if state.resolved() {
                drop(state);
                let since = *resolved_since.get_or_insert_with(Instant::now);
                if connections.load(std::sync::atomic::Ordering::SeqCst) == 0
                    || since.elapsed() >= Duration::from_millis(self.config.linger_ms)
                {
                    return Ok(status);
                }
            } else {
                resolved_since = None;
            }
        }
    }
}

/// Handles one peer connection (worker or control client) until it
/// disconnects or the protocol errors out.
fn handle_connection(
    stream: TcpStream,
    state: &Mutex<State>,
    config: &CoordinatorConfig,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let Some(message) = read_message(&mut reader)? else {
            return Ok(()); // clean EOF
        };
        match message {
            Message::Hello {
                worker,
                protocol,
                token,
            } => {
                if protocol != PROTOCOL_VERSION {
                    let error = Message::Error {
                        message: format!(
                            "protocol mismatch: worker {worker} speaks v{protocol}, \
                             coordinator v{PROTOCOL_VERSION}"
                        ),
                    };
                    write_message(&mut writer, &error)?;
                    return Ok(());
                }
                if let Some(expected) = &config.auth_token {
                    if token.as_deref() != Some(expected.as_str()) {
                        let error = Message::Error {
                            message: format!(
                                "authentication failed: worker {worker} presented \
                                 {} token",
                                if token.is_some() {
                                    "a mismatched"
                                } else {
                                    "no"
                                }
                            ),
                        };
                        tel::counter!("dispatch.auth_rejected");
                        tel::event!("dispatch.auth_rejected", "{worker}");
                        write_message(&mut writer, &error)?;
                        return Ok(());
                    }
                }
                let welcome = {
                    let state = lock_state(state);
                    Message::Welcome {
                        campaign: state.campaign.clone(),
                        seed: state.seed,
                        total: state.jobs.len() as u64,
                        heartbeat_ms: config.heartbeat_ms,
                    }
                };
                tel::counter!("dispatch.workers_connected");
                tel::event!("dispatch.hello", "{worker}");
                write_message(&mut writer, &welcome)?;
            }
            Message::LeaseRequest {
                worker,
                max_jobs,
                trace,
            } => {
                let parent = trace
                    .as_deref()
                    .and_then(tel::SpanContext::parse_traceparent);
                let _req = tel::TraceSpan::with_parent("dispatch.request", parent);
                let _g = tel::trace_span!("dispatch.lease_request");
                let reply = {
                    let mut state = lock_state(state);
                    let now = Instant::now();
                    state.reap_expired(now)?;
                    let leases = state.grant(&worker, max_jobs, now);
                    if !leases.is_empty() {
                        Message::Grant { leases }
                    } else if state.resolved() {
                        Message::Done
                    } else {
                        Message::Wait {
                            backoff_ms: config.wait_backoff_ms,
                        }
                    }
                };
                write_message(&mut writer, &reply)?;
            }
            Message::Heartbeat { worker, lease_ids } => {
                let mut state = lock_state(state);
                state.heartbeat(&lease_ids, Instant::now());
                let _ = worker;
            }
            Message::Result {
                worker,
                lease_id,
                line,
                trace,
            } => {
                let parent = trace
                    .as_deref()
                    .and_then(tel::SpanContext::parse_traceparent);
                let _req = tel::TraceSpan::with_parent("dispatch.request", parent);
                let _g = tel::trace_span!("dispatch.ingest");
                let mut state = lock_state(state);
                state.ingest_result(lease_id, &line, Instant::now())?;
                let _ = worker;
            }
            Message::Status => {
                let report = lock_state(state).status();
                write_message(&mut writer, &Message::StatusReport(report))?;
            }
            Message::Trace { max } => {
                let report = crate::proto::build_trace_report(
                    &tel::snapshot(),
                    "dispatch.request",
                    &tel::SloConfig::default(),
                    max.min(256) as usize,
                );
                write_message(&mut writer, &Message::TraceReport(report))?;
            }
            Message::Drain => {
                let report = {
                    let mut state = lock_state(state);
                    state.draining = true;
                    tel::event!("dispatch.drain");
                    state.status()
                };
                write_message(&mut writer, &Message::StatusReport(report))?;
            }
            Message::Goodbye { worker } => {
                tel::event!("dispatch.goodbye", "{worker}");
                return Ok(());
            }
            other => {
                let error = Message::Error {
                    message: format!("unexpected message {other:?}"),
                };
                write_message(&mut writer, &error)?;
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeSource {
        name: String,
        seed: u64,
        keys: Vec<String>,
    }

    impl JobSource for FakeSource {
        fn source_name(&self) -> &str {
            &self.name
        }
        fn source_seed(&self) -> u64 {
            self.seed
        }
        fn source_keys(&self) -> Vec<String> {
            self.keys.clone()
        }
    }

    fn fake_source(n: usize) -> FakeSource {
        FakeSource {
            name: "unit".into(),
            seed: 7,
            keys: (0..n).map(|i| format!("job/{i}")).collect(),
        }
    }

    fn temp_store(tag: &str) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "thermorl-dispatch-coord-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let store = dir.join("store.jsonl");
        (dir, store)
    }

    fn test_state(tag: &str, n: usize, max_retries: u32) -> (State, PathBuf) {
        let (dir, store_path) = temp_store(tag);
        let store = CheckpointStore::open(&store_path, false).expect("open store");
        let config = CoordinatorConfig {
            store: store_path,
            lease_ms: 1_000,
            max_retries,
            ..CoordinatorConfig::default()
        };
        (State::new(&fake_source(n), store, &config), dir)
    }

    fn ok_line(key: &str, seed: u64) -> String {
        format!("{{\"key\":\"{key}\",\"seed\":{seed},\"status\":\"ok\",\"payload\":1}}")
    }

    fn panic_line(key: &str, seed: u64) -> String {
        format!("{{\"key\":\"{key}\",\"seed\":{seed},\"status\":\"panicked\",\"error\":\"boom\"}}")
    }

    #[test]
    fn grant_heartbeat_result_lifecycle() {
        let (mut state, dir) = test_state("lifecycle", 3, 2);
        let t0 = Instant::now();
        let leases = state.grant("w1", 2, t0);
        assert_eq!(leases.len(), 2);
        assert_eq!(state.status().queued, 1);
        assert_eq!(state.status().leased, 2);

        // A heartbeat at t0+900ms pushes the deadline past t0+1s.
        state.heartbeat(&[leases[0].lease_id], t0 + Duration::from_millis(900));
        state
            .reap_expired(t0 + Duration::from_millis(1_500))
            .expect("reap");
        assert_eq!(
            state.status().leased,
            1,
            "unbeaten lease expired, beaten one survives"
        );

        let seed = leases[0].seed;
        state
            .ingest_result(
                leases[0].lease_id,
                &ok_line(&leases[0].key, seed),
                t0 + Duration::from_millis(1_600),
            )
            .expect("ingest");
        let status = state.status();
        assert_eq!(status.completed, 1);
        assert_eq!(status.leased, 0);
        assert_eq!(status.queued, 2, "expired key is back in the queue");
        assert!(!state.resolved());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expiry_requeues_until_retry_cap_then_fails_with_timeout_line() {
        let (mut state, dir) = test_state("expiry-cap", 1, 2);
        let t0 = Instant::now();
        // First grant + 2 retries = 3 expiries to exhaust the budget.
        for round in 0..3 {
            let leases = state.grant("w1", 1, t0);
            assert_eq!(leases.len(), 1, "round {round} should re-grant");
            let n = state
                .reap_expired(t0 + Duration::from_secs(10))
                .expect("reap");
            assert_eq!(n, 1);
        }
        let status = state.status();
        assert_eq!(status.failed, 1);
        assert_eq!(status.queued, 0);
        assert!(state.resolved());
        let text = std::fs::read_to_string(state.store.path()).expect("read store");
        assert_eq!(text.lines().count(), 1, "one final failure line");
        assert!(
            text.contains("\"status\":\"timeout\""),
            "synthesized timeout line: {text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_results_requeue_and_only_the_final_failure_is_stored() {
        let (mut state, dir) = test_state("fail-cap", 1, 1);
        let t0 = Instant::now();
        let lease = state.grant("w1", 1, t0).remove(0);
        state
            .ingest_result(lease.lease_id, &panic_line(&lease.key, lease.seed), t0)
            .expect("ingest");
        assert_eq!(state.status().queued, 1, "first failure re-queues");
        let text = std::fs::read_to_string(state.store.path()).expect("read");
        assert!(text.is_empty(), "no failure stored while retries remain");

        let lease = state.grant("w1", 1, t0).remove(0);
        state
            .ingest_result(lease.lease_id, &panic_line(&lease.key, lease.seed), t0)
            .expect("ingest");
        let status = state.status();
        assert_eq!(status.failed, 1);
        assert!(state.resolved());
        let text = std::fs::read_to_string(state.store.path()).expect("read");
        assert_eq!(text.lines().count(), 1, "exactly one final line: {text}");
        assert!(text.contains("\"status\":\"panicked\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_result_after_regrant_completes_key_and_dedupes_duplicate() {
        let (mut state, dir) = test_state("stale", 1, 5);
        let t0 = Instant::now();
        let first = state.grant("w1", 1, t0).remove(0);
        // The lease expires and the key is re-granted to another worker.
        state
            .reap_expired(t0 + Duration::from_secs(10))
            .expect("reap");
        let second = state.grant("w2", 1, t0 + Duration::from_secs(10)).remove(0);
        assert_ne!(first.lease_id, second.lease_id);

        // The presumed-dead first worker reports anyway: the key completes
        // and the re-granted lease is released.
        let line = ok_line(&first.key, first.seed);
        state
            .ingest_result(first.lease_id, &line, t0 + Duration::from_secs(11))
            .expect("ingest");
        assert_eq!(state.status().completed, 1);
        assert_eq!(state.status().leased, 0);
        assert!(state.resolved());

        // The second worker's duplicate report changes nothing.
        state
            .ingest_result(second.lease_id, &line, t0 + Duration::from_secs(12))
            .expect("ingest duplicate");
        assert_eq!(state.status().completed, 1);
        let text = std::fs::read_to_string(state.store.path()).expect("read");
        assert_eq!(text.lines().count(), 1, "no duplicate lines: {text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_stops_grants_and_resolves_without_queue_empty() {
        let (mut state, dir) = test_state("drain", 4, 2);
        let t0 = Instant::now();
        let lease = state.grant("w1", 1, t0).remove(0);
        state.draining = true;
        assert!(
            state.grant("w1", 4, t0).is_empty(),
            "draining grants nothing"
        );
        assert!(!state.resolved(), "in-flight lease still pending");
        state
            .ingest_result(lease.lease_id, &ok_line(&lease.key, lease.seed), t0)
            .expect("ingest");
        assert!(state.resolved(), "drained + no leases = resolved");
        assert_eq!(state.status().queued, 3, "unfinished keys stay queued");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_skips_completed_store_keys() {
        let (dir, store_path) = temp_store("resume");
        std::fs::write(&store_path, ok_line("job/1", 9) + "\n").expect("seed store");
        let store = CheckpointStore::open(&store_path, true).expect("open");
        let config = CoordinatorConfig {
            store: store_path,
            ..CoordinatorConfig::default()
        };
        let state = State::new(&fake_source(3), store, &config);
        let status = state.status();
        assert_eq!(status.total, 3);
        assert_eq!(status.completed, 1);
        assert_eq!(status.queued, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
