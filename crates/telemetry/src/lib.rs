//! thermorl-telemetry: workspace-wide observability with a compile-out
//! path.
//!
//! The paper's headline mechanisms — Q-table snapshot/restore on *intra*-
//! application change, Q-table reset on *inter*-application change, the
//! decoupled sampling window — are events and rates that used to be
//! invisible at run time. This crate gives every layer one cheap way to
//! surface them:
//!
//! * **Metrics registry** — named [`counter!`]s, [`gauge!`]s and
//!   log2-bucketed [`observe!`] histograms, recorded into per-thread
//!   shards (each shard's mutex is only ever locked by its own thread on
//!   the hot path) and merged on [`snapshot`]. Export as JSON
//!   ([`Snapshot::to_json`]) or Prometheus text
//!   ([`Snapshot::to_prometheus`]).
//! * **Scoped spans** — `let _g = span!("engine.decide");` times the
//!   enclosing scope via an RAII [`SpanGuard`] and aggregates count /
//!   total / histogram per span name.
//! * **Event log** — [`event!`]`("detect", "inter")` appends a
//!   structured [`Event`] to a bounded per-thread ring buffer
//!   ([`EventLog`]); overflow evicts the oldest and counts the drop.
//!   [`thread_events_since`] lets a consumer (the sim's trace bridge)
//!   drain its thread's events incrementally.
//! * **Distributed traces** — `let _g = trace_span!("serve.request");`
//!   records a [`SpanRecord`] with full identity (trace id, span id,
//!   parent) into a bounded per-thread ring when
//!   [`set_trace_enabled`]`(true)` is also on; [`SpanContext`] rides
//!   wire messages as a W3C-style `traceparent` so one trace follows a
//!   request across threads and processes. Consumers: the Chrome-trace
//!   exporter ([`Snapshot::to_chrome_trace`]), the [`flight`] recorder
//!   (panic / SIGUSR1 dump of the ring tails), and [`slo_summary`]
//!   (p50/p99 + error-budget burn over the span histograms).
//!
//! **Cost model.** Recording is off unless both the `telemetry` cargo
//! feature (on by default, forwarded by every downstream crate) is
//! compiled in *and* [`set_enabled`]`(true)` was called. Every macro
//! checks [`enabled`] first: with the feature off that check is a
//! constant `false`, so arguments are never evaluated and the call site
//! folds away; with the feature on but recording disabled it is a single
//! relaxed atomic load (sub-nanosecond — `bench_thermal` measures it).
//!
//! ```
//! use thermorl_telemetry as tel;
//!
//! tel::set_enabled(true);
//! tel::counter!("demo.widgets", 3);
//! tel::gauge!("demo.level", 0.7);
//! {
//!     let _g = tel::span!("demo.work");
//!     tel::event!("demo", "phase {}", 1);
//! }
//! let snap = tel::snapshot();
//! # #[cfg(feature = "telemetry")]
//! assert_eq!(snap.counters.get("demo.widgets").copied(), Some(3));
//! tel::set_enabled(false);
//! ```

#![deny(missing_docs)]

pub mod chrome;
pub mod events;
pub mod export;
pub mod flight;
pub mod histogram;
pub mod registry;
pub mod slo;
pub mod span;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use events::{Event, EventLog, DEFAULT_EVENT_CAPACITY};
pub use export::event_jsonl;
pub use flight::{flight_dump, install as install_flight_recorder, request_dump, FLIGHT_LAST};
pub use histogram::{Histogram, BUCKETS};
pub use registry::{
    counter_add, enabled, gauge_set, next_event_seq, observe_value, record_event, record_span_ns,
    record_trace_span, reset, set_enabled, set_trace_enabled, snapshot, thread_events_since,
    thread_snapshot, trace_enabled, RingOccupancy, Snapshot, SpanStats,
};
pub use slo::{slo_summary, SloConfig, SloSummary};
pub use span::SpanGuard;
pub use trace::{
    now_us, summarize_traces, trace_id_from_seed, SpanContext, SpanRecord, TraceLog, TraceSpan,
    TraceSummary, DEFAULT_TRACE_CAPACITY,
};

/// Increments a named counter: `counter!("engine.samples")` adds 1,
/// `counter!("engine.samples", n)` adds `n`. Arguments are not evaluated
/// when telemetry is disabled.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1)
    };
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::counter_add($name, $delta);
        }
    };
}

/// Sets a named gauge to an `f64` value: `gauge!("agent.alpha", a)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::gauge_set($name, $value);
        }
    };
}

/// Records a `u64` sample into a named log2 histogram:
/// `observe!("runner.job_ms", ms)`.
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::observe_value($name, $value);
        }
    };
}

/// Appends a structured event: `event!("detect", "inter")` or with
/// format arguments `event!("agent.phase", "{:?}", phase)`. The detail
/// string is only formatted when telemetry is enabled.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::record_event($name, ::std::string::String::new());
        }
    };
    ($name:expr, $($arg:tt)+) => {
        if $crate::enabled() {
            $crate::record_event($name, ::std::format!($($arg)+));
        }
    };
}

/// Starts an RAII span timer: `let _g = span!("engine.decide");` records
/// the scope's duration on drop. Binds to a named guard if you need to
/// end it early (`drop(g)`) or abandon it (`g.cancel()`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::begin($name)
    };
}

/// Starts an RAII *traced* span nested under the innermost live traced
/// span on this thread: `let _g = trace_span!("serve.request");`. Times
/// the scope like [`span!`] (same aggregate stats) and, when tracing is
/// enabled, records a [`SpanRecord`] with trace identity on drop. Use
/// [`TraceSpan::with_parent`] directly when the parent arrives over the
/// wire.
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {
        $crate::TraceSpan::child($name)
    };
}

#[cfg(test)]
mod tests {
    use crate as tel;

    // The global registry is process-wide and unit tests run
    // concurrently, so every test here uses metric names private to
    // itself and asserts via deltas, never via global absence.

    #[test]
    #[cfg(feature = "telemetry")]
    fn macros_record_through_the_registry() {
        tel::set_enabled(true);
        let before = tel::thread_snapshot();
        tel::counter!("libtest.counter");
        tel::counter!("libtest.counter", 4);
        tel::gauge!("libtest.gauge", 2.5);
        tel::observe!("libtest.hist", 700);
        {
            let _g = tel::span!("libtest.span");
            std::hint::black_box(17);
        }
        tel::event!("libtest.event", "detail {}", 9);
        let delta = tel::thread_snapshot().since(&before);
        assert_eq!(delta.counters.get("libtest.counter").copied(), Some(5));
        assert_eq!(delta.gauges.get("libtest.gauge").copied(), Some(2.5));
        assert_eq!(
            delta.histograms.get("libtest.hist").map(|h| h.count()),
            Some(1)
        );
        let span = delta.spans.get("libtest.span").expect("span recorded");
        assert_eq!(span.count, 1);
        let ev = delta
            .events
            .iter()
            .find(|e| e.name == "libtest.event")
            .expect("event recorded");
        assert_eq!(ev.detail, "detail 9");
        assert_eq!(ev.label(), "libtest.event:detail 9");
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn span_cancel_records_nothing() {
        tel::set_enabled(true);
        let before = tel::thread_snapshot();
        let g = tel::span!("libtest.cancelled");
        g.cancel();
        let delta = tel::thread_snapshot().since(&before);
        assert!(!delta.spans.contains_key("libtest.cancelled"));
    }

    #[test]
    #[cfg(not(feature = "telemetry"))]
    fn feature_off_is_inert() {
        tel::set_enabled(true); // must be a no-op
        assert!(!tel::enabled());
        tel::counter!("off.counter");
        tel::event!("off.event", "x");
        assert!(tel::snapshot().is_empty());
    }
}
