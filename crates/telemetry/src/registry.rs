//! The global metrics registry: per-thread shards merged on snapshot.
//!
//! Every recording call touches only the calling thread's own shard — a
//! `Mutex<ShardData>` that no other thread locks on the hot path, so the
//! lock is always uncontended (snapshots briefly lock each shard, which
//! is the only cross-thread traffic). Metric names are `&'static str`, so
//! recording a counter or span allocates nothing after the first touch of
//! a name.
//!
//! Recording is guarded twice:
//! * compile time — without the `telemetry` feature every function here
//!   is an empty body and [`crate::enabled`] is a constant `false`;
//! * run time — with the feature on, nothing records until
//!   [`set_enabled`]`(true)` flips the global [`AtomicBool`] (checked
//!   with one relaxed load per call site).

use std::collections::BTreeMap;

use crate::events::Event;
use crate::histogram::Histogram;
use crate::trace::SpanRecord;

#[cfg(feature = "telemetry")]
use imp::with_shard;

/// Aggregate timing statistics for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total duration across all completions, in nanoseconds (saturating).
    pub total_ns: u64,
    /// Log2 histogram of per-span durations in nanoseconds.
    pub hist: Histogram,
}

impl SpanStats {
    /// Records one completed span of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.hist.record(ns);
    }

    /// Mean span duration in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Adds `other`'s completions into `self`.
    pub fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.hist.merge(&other.hist);
    }

    /// Saturating difference `self - baseline` (per-job delta capture).
    pub fn saturating_sub(&self, baseline: &SpanStats) -> SpanStats {
        SpanStats {
            count: self.count.saturating_sub(baseline.count),
            total_ns: self.total_ns.saturating_sub(baseline.total_ns),
            hist: self.hist.saturating_sub(&baseline.hist),
        }
    }
}

/// Occupancy of one shard's bounded rings at snapshot time — how close
/// each ring is to evicting, surfaced so operators can size capacities
/// before drops start rather than after.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingOccupancy {
    /// Events currently held in the shard's event ring.
    pub events: u64,
    /// The event ring's fixed capacity.
    pub events_capacity: u64,
    /// Trace spans currently held in the shard's trace ring.
    pub trace_spans: u64,
    /// The trace ring's fixed capacity.
    pub trace_capacity: u64,
}

/// A merged, point-in-time view of the registry (or of one shard).
///
/// Maps are `BTreeMap` so exports are deterministically ordered; events
/// are sorted by their global sequence number.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Value histograms recorded via `observe!`.
    pub histograms: BTreeMap<String, Histogram>,
    /// Span timing aggregates.
    pub spans: BTreeMap<String, SpanStats>,
    /// Structured events, globally ordered by `seq`.
    pub events: Vec<Event>,
    /// Events lost to ring-buffer overflow across all shards.
    pub events_dropped: u64,
    /// Completed trace spans, globally ordered by `seq` (the same
    /// counter events draw from, so spans and events interleave).
    pub trace_spans: Vec<SpanRecord>,
    /// Trace spans lost to ring-buffer overflow across all shards.
    pub trace_spans_dropped: u64,
    /// Per-shard ring occupancy (one row per registered shard, in
    /// registration order).
    pub shard_occupancy: Vec<RingOccupancy>,
}

impl Snapshot {
    /// Whether nothing at all was recorded. Shard occupancy rows are
    /// ignored: empty rings registered by idle threads are not data.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
            && self.events_dropped == 0
            && self.trace_spans.is_empty()
            && self.trace_spans_dropped == 0
    }

    /// The delta `self - baseline`: counter/histogram/span aggregates are
    /// subtracted (entries that end at zero are dropped), gauges keep
    /// their latest value, and only events newer than the baseline's last
    /// sequence number survive. Used to carve what one job recorded out
    /// of its thread's running totals.
    pub fn since(&self, baseline: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, value) in &self.counters {
            let delta = value.saturating_sub(baseline.counters.get(name).copied().unwrap_or(0));
            if delta > 0 {
                out.counters.insert(name.clone(), delta);
            }
        }
        out.gauges = self.gauges.clone();
        for (name, hist) in &self.histograms {
            let delta = match baseline.histograms.get(name) {
                Some(base) => hist.saturating_sub(base),
                None => hist.clone(),
            };
            if !delta.is_empty() {
                out.histograms.insert(name.clone(), delta);
            }
        }
        for (name, stats) in &self.spans {
            let delta = match baseline.spans.get(name) {
                Some(base) => stats.saturating_sub(base),
                None => stats.clone(),
            };
            if delta.count > 0 {
                out.spans.insert(name.clone(), delta);
            }
        }
        let floor = baseline.events.last().map(|e| e.seq + 1).unwrap_or(0);
        out.events = self
            .events
            .iter()
            .filter(|e| e.seq >= floor)
            .cloned()
            .collect();
        out.events_dropped = self.events_dropped.saturating_sub(baseline.events_dropped);
        let trace_floor = baseline.trace_spans.last().map(|s| s.seq + 1).unwrap_or(0);
        out.trace_spans = self
            .trace_spans
            .iter()
            .filter(|s| s.seq >= trace_floor)
            .cloned()
            .collect();
        out.trace_spans_dropped = self
            .trace_spans_dropped
            .saturating_sub(baseline.trace_spans_dropped);
        out.shard_occupancy = self.shard_occupancy.clone();
        out
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock, PoisonError};

    use crate::events::EventLog;
    use crate::histogram::Histogram;
    use crate::trace::TraceLog;

    use super::SpanStats;

    #[derive(Default)]
    pub(super) struct ShardData {
        pub counters: HashMap<&'static str, u64>,
        pub gauges: HashMap<&'static str, f64>,
        pub histograms: HashMap<&'static str, Histogram>,
        pub spans: HashMap<&'static str, SpanStats>,
        pub events: EventLog,
        pub traces: TraceLog,
    }

    pub(super) struct Registry {
        pub seq: AtomicU64,
        // Shards stay registered after their thread exits so the counts
        // they accumulated survive into later snapshots.
        pub shards: Mutex<Vec<Arc<Mutex<ShardData>>>>,
    }

    // Deliberately outside the `OnceLock`: `enabled()` runs on every
    // instrumented call site even while recording is off, and a bare
    // static load dodges the lock's init check on that path.
    pub(super) static ENABLED: AtomicBool = AtomicBool::new(false);

    // Tracing gates separately on top of `ENABLED`: metrics-only
    // deployments pay nothing for the trace rings, and the extra load
    // only happens once recording is already live.
    pub(super) static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

    static REGISTRY: OnceLock<Registry> = OnceLock::new();

    pub(super) fn global() -> &'static Registry {
        REGISTRY.get_or_init(|| Registry {
            seq: AtomicU64::new(0),
            shards: Mutex::new(Vec::new()),
        })
    }

    thread_local! {
        static SHARD: RefCell<Option<Arc<Mutex<ShardData>>>> = const { RefCell::new(None) };
    }

    /// Runs `f` on the calling thread's shard, registering one on first
    /// use. Locks are recovered from poisoning (a panicking job must not
    /// take the whole registry down with it).
    pub(super) fn with_shard<R>(f: impl FnOnce(&mut ShardData) -> R) -> R {
        SHARD.with(|cell| {
            let mut slot = cell.borrow_mut();
            let arc = slot.get_or_insert_with(|| {
                let arc = Arc::new(Mutex::new(ShardData::default()));
                global()
                    .shards
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(Arc::clone(&arc));
                arc
            });
            let mut data = arc.lock().unwrap_or_else(PoisonError::into_inner);
            f(&mut data)
        })
    }

    pub(super) fn all_shards() -> Vec<Arc<Mutex<ShardData>>> {
        global()
            .shards
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    // `#[inline]` here matters: without it, a cross-crate-inlined
    // `counter_add` still makes a real call for this one load, which
    // triples the cost of the disabled path.
    #[inline]
    pub(super) fn load_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    #[inline]
    pub(super) fn load_trace_enabled() -> bool {
        TRACE_ENABLED.load(Ordering::Relaxed)
    }

    pub(super) fn next_seq() -> u64 {
        global().seq.fetch_add(1, Ordering::Relaxed)
    }
}

/// Whether recording is live: the `telemetry` feature is compiled in AND
/// the runtime switch is on. Every macro checks this first, so with the
/// feature off the check is a constant `false` and the whole call site
/// folds away.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "telemetry")]
    {
        imp::load_enabled()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        false
    }
}

/// Flips the runtime recording switch (no-op without the feature).
pub fn set_enabled(on: bool) {
    #[cfg(feature = "telemetry")]
    imp::ENABLED.store(on, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "telemetry"))]
    let _ = on;
}

/// Whether trace recording is live: [`enabled`] AND the trace switch is
/// on. The check short-circuits, so a fully disabled call site still
/// costs one relaxed load.
#[inline]
pub fn trace_enabled() -> bool {
    #[cfg(feature = "telemetry")]
    {
        imp::load_enabled() && imp::load_trace_enabled()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        false
    }
}

/// Flips the runtime trace-recording switch (no-op without the feature).
/// Tracing also requires [`set_enabled`]`(true)` — the trace switch
/// alone records nothing.
pub fn set_trace_enabled(on: bool) {
    #[cfg(feature = "telemetry")]
    imp::TRACE_ENABLED.store(on, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "telemetry"))]
    let _ = on;
}

/// Adds `delta` to the named counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    #[cfg(feature = "telemetry")]
    {
        if !enabled() {
            return;
        }
        with_shard(|d| *d.counters.entry(name).or_insert(0) += delta);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (name, delta);
}

/// Sets the named gauge to `value`.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    #[cfg(feature = "telemetry")]
    {
        if !enabled() {
            return;
        }
        with_shard(|d| {
            d.gauges.insert(name, value);
        });
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (name, value);
}

/// Records `value` into the named histogram.
#[inline]
pub fn observe_value(name: &'static str, value: u64) {
    #[cfg(feature = "telemetry")]
    {
        if !enabled() {
            return;
        }
        with_shard(|d| d.histograms.entry(name).or_default().record(value));
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (name, value);
}

/// Records one completed span of `ns` nanoseconds under `name` (the
/// manual-timing escape hatch behind [`crate::SpanGuard`]).
#[inline]
pub fn record_span_ns(name: &'static str, ns: u64) {
    #[cfg(feature = "telemetry")]
    {
        if !enabled() {
            return;
        }
        with_shard(|d| d.spans.entry(name).or_default().record(ns));
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (name, ns);
}

/// Appends a structured event to the calling thread's ring buffer,
/// stamping it with the next global sequence number.
#[inline]
pub fn record_event(name: &'static str, detail: String) {
    #[cfg(feature = "telemetry")]
    {
        if !enabled() {
            return;
        }
        let seq = imp::next_seq();
        let ts_us = crate::trace::now_us();
        with_shard(|d| {
            d.events.push(Event {
                seq,
                ts_us,
                name,
                detail,
            })
        });
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (name, detail);
}

/// Appends a completed trace span to the calling thread's trace ring,
/// stamping it with the next global sequence number (shared with
/// events). Dropped silently when tracing is off.
#[inline]
pub fn record_trace_span(record: SpanRecord) {
    #[cfg(feature = "telemetry")]
    {
        if !trace_enabled() {
            return;
        }
        let mut record = record;
        record.seq = imp::next_seq();
        with_shard(|d| d.traces.push(record));
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = record;
}

/// The next sequence number a future event would receive — the natural
/// starting cursor for [`thread_events_since`].
pub fn next_event_seq() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        imp::global().seq.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        0
    }
}

/// Clones out the calling thread's events with `seq >= seq_floor`
/// (oldest-first). Empty when telemetry is off or nothing matched.
pub fn thread_events_since(seq_floor: u64) -> Vec<Event> {
    #[cfg(feature = "telemetry")]
    {
        if !enabled() {
            return Vec::new();
        }
        with_shard(|d| d.events.since(seq_floor))
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = seq_floor;
        Vec::new()
    }
}

#[cfg(feature = "telemetry")]
fn merge_into(snap: &mut Snapshot, data: &imp::ShardData) {
    for (name, value) in &data.counters {
        *snap.counters.entry((*name).to_string()).or_insert(0) += value;
    }
    for (name, value) in &data.gauges {
        snap.gauges.insert((*name).to_string(), *value);
    }
    for (name, hist) in &data.histograms {
        snap.histograms
            .entry((*name).to_string())
            .or_default()
            .merge(hist);
    }
    for (name, stats) in &data.spans {
        snap.spans
            .entry((*name).to_string())
            .or_default()
            .merge(stats);
    }
    snap.events.extend(data.events.iter().cloned());
    snap.events_dropped += data.events.dropped();
    snap.trace_spans.extend(data.traces.iter().cloned());
    snap.trace_spans_dropped += data.traces.dropped();
    snap.shard_occupancy.push(RingOccupancy {
        events: data.events.len() as u64,
        events_capacity: data.events.capacity() as u64,
        trace_spans: data.traces.len() as u64,
        trace_capacity: data.traces.capacity() as u64,
    });
}

/// Merges every shard into one [`Snapshot`] (empty without the feature).
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "telemetry")]
    {
        let mut snap = Snapshot::default();
        for shard in imp::all_shards() {
            let data = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            merge_into(&mut snap, &data);
        }
        snap.events.sort_by_key(|e| e.seq);
        snap.trace_spans.sort_by_key(|s| s.seq);
        snap
    }
    #[cfg(not(feature = "telemetry"))]
    {
        Snapshot::default()
    }
}

/// A snapshot of just the calling thread's shard (empty without the
/// feature). Cheap enough to bracket a single job with.
pub fn thread_snapshot() -> Snapshot {
    #[cfg(feature = "telemetry")]
    {
        let mut snap = Snapshot::default();
        with_shard(|data| merge_into(&mut snap, data));
        snap
    }
    #[cfg(not(feature = "telemetry"))]
    {
        Snapshot::default()
    }
}

/// Clears every shard's data (counters, gauges, histograms, spans,
/// events). The enable flag and the global sequence counter are left
/// alone. Intended for tests and between-campaign resets.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    for shard in imp::all_shards() {
        let mut data = shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        data.counters.clear();
        data.gauges.clear();
        data.histograms.clear();
        data.spans.clear();
        data.events.clear();
        data.traces.clear();
    }
}
