//! RAII span guards: `let _g = span!("engine.decide");` times the scope
//! and records the duration into the registry on drop.

use std::time::Instant;

use crate::registry;

/// A scoped timer. Created by the [`crate::span!`] macro (or
/// [`SpanGuard::begin`]); on drop it records the elapsed nanoseconds
/// under its name. When telemetry is disabled at `begin` time no clock is
/// read and the drop is a no-op.
#[must_use = "a span guard times its scope; dropping it immediately records ~0 ns"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Starts timing a span named `name` (no-op when telemetry is off).
    #[inline]
    pub fn begin(name: &'static str) -> SpanGuard {
        let start = if registry::enabled() {
            Some(Instant::now())
        } else {
            None
        };
        SpanGuard { name, start }
    }

    /// Abandons the span without recording it.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            registry::record_span_ns(self.name, ns);
        }
    }
}
