//! Distributed tracing: causal span trees with wire propagation.
//!
//! The registry's [`crate::SpanStats`] answer "how long does
//! `serve.request` take on average?" — this module answers "*which*
//! request was slow, and where did its time go?" A [`TraceSpan`] is an
//! RAII guard like [`crate::SpanGuard`], but each instance carries a
//! [`SpanContext`] — a `(trace_id, span_id)` pair drawn from the same
//! splitmix64 machinery the runner derives job seeds with — and records a
//! [`SpanRecord`] into a bounded per-thread ring on drop. Parentage comes
//! from three places:
//!
//! * **the thread** — [`TraceSpan::child`] nests under the innermost
//!   live span on the calling thread (a thread-local stack, popped by
//!   span id so overlapping, non-LIFO drops stay correct);
//! * **the wire** — [`SpanContext::to_traceparent`] renders a W3C-style
//!   `traceparent` string (`00-<trace>-<span>-01`) that rides as an
//!   optional field on dispatch/serve messages; the receiving side
//!   resumes the trace with [`TraceSpan::with_parent`];
//! * **links** — a batch span that serves many requests at once is a
//!   root with [`TraceSpan::add_link`]ed member contexts (fan-in).
//!
//! Recording is gated separately from metrics: spans time themselves
//! whenever telemetry is [`crate::enabled`] (feeding the aggregate
//! [`crate::SpanStats`], so a `TraceSpan` is a drop-in replacement for
//! `span!`), but a [`SpanRecord`] is only kept when
//! [`crate::set_trace_enabled`]`(true)` was also called. With everything
//! off, constructing a `TraceSpan` is one relaxed atomic load.

use std::collections::VecDeque;
use std::time::Instant;

use crate::registry;

/// The identity a trace carries across threads and processes: which
/// trace this is, and which span within it is the current parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Identifier shared by every span of one logical request.
    pub trace_id: u64,
    /// Identifier of one span within the trace.
    pub span_id: u64,
}

impl SpanContext {
    /// Renders the context as a W3C-style `traceparent` value:
    /// `00-<trace_id as 32 hex>-<span_id as 16 hex>-01`. Our ids are
    /// 64-bit, so the trace id occupies the low half of the 128-bit
    /// field.
    pub fn to_traceparent(self) -> String {
        format!("00-{:032x}-{:016x}-01", self.trace_id, self.span_id)
    }

    /// Parses a `traceparent` value back into a context. Returns `None`
    /// on any malformed input (propagation is best-effort: a bad header
    /// starts a fresh trace rather than failing the request). Trace ids
    /// wider than 64 bits are truncated to their low half.
    pub fn parse_traceparent(s: &str) -> Option<SpanContext> {
        let mut parts = s.split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let span = parts.next()?;
        let _flags = parts.next()?;
        if parts.next().is_some() || version.len() != 2 || trace.len() != 32 || span.len() != 16 {
            return None;
        }
        let trace_id = u128::from_str_radix(trace, 16).ok()? as u64;
        let span_id = u64::from_str_radix(span, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(SpanContext { trace_id, span_id })
    }
}

/// One completed span, as recorded into the per-thread trace ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global sequence number (shared with [`crate::Event`]s, so spans
    /// and events interleave in one total order).
    pub seq: u64,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's own id.
    pub span_id: u64,
    /// The parent span's id; 0 marks a trace root.
    pub parent_id: u64,
    /// The static span name (e.g. `"serve.request"`).
    pub name: &'static str,
    /// Start time, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small per-thread id (stable within the process) for timeline
    /// lanes.
    pub thread: u64,
    /// Fan-in links: contexts this span served but is not a child of
    /// (e.g. the members of a thermal batch step).
    pub links: Vec<SpanContext>,
}

/// Default per-thread trace ring capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A bounded ring of [`SpanRecord`]s with an overflow drop counter —
/// the trace-side sibling of [`crate::EventLog`].
#[derive(Clone, Debug)]
pub struct TraceLog {
    ring: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// An empty log holding at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace log capacity must be positive");
        TraceLog {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting (and counting) the oldest when full.
    pub fn push(&mut self, record: SpanRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many records have been evicted due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.ring.iter()
    }

    /// Removes all records and resets the drop counter.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.dropped = 0;
    }
}

mod ids {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::Instant;

    // The same splitmix64 stream the runner derives job seeds from,
    // reproduced here (telemetry sits below the runner in the crate
    // graph). `fetch_add` hands every caller a distinct state, and the
    // finalizer is a bijection, so ids are unique without a lock.
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    static ID_STATE: AtomicU64 = AtomicU64::new(0x7468_6572_6D6F_726C); // "thermorl"

    pub(super) fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A fresh nonzero 64-bit id (0 is the "no parent" sentinel).
    pub(super) fn next_id() -> u64 {
        let state = ID_STATE
            .fetch_add(GOLDEN, Ordering::Relaxed)
            .wrapping_add(GOLDEN);
        let id = mix(state);
        if id == 0 {
            1
        } else {
            id
        }
    }

    static THREAD_COUNTER: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static THREAD_ID: u64 = THREAD_COUNTER.fetch_add(1, Ordering::Relaxed);
    }

    /// A small process-stable id for the calling thread (timeline lane).
    pub(super) fn thread_id() -> u64 {
        THREAD_ID.with(|t| *t)
    }

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Microseconds since the process trace epoch (pinned on first use,
    /// so every thread shares one coherent timeline).
    pub(super) fn now_us() -> u64 {
        let epoch = EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Microseconds since the process trace epoch — the timestamp scale of
/// [`SpanRecord::start_us`] and [`crate::Event::ts_us`].
pub fn now_us() -> u64 {
    ids::now_us()
}

/// Derives a deterministic trace id from a seed (the runner stamps each
/// job's trace with `trace_id_from_seed(job_seed)`, so a job's trace id
/// is reproducible across runs, schedules, and worker processes).
pub fn trace_id_from_seed(seed: u64) -> u64 {
    let id = ids::mix(seed ^ 0x7261_6365); // "race"
    if id == 0 {
        1
    } else {
        id
    }
}

use std::cell::RefCell;

thread_local! {
    static STACK: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
}

fn push_stack(ctx: SpanContext) {
    STACK.with(|s| s.borrow_mut().push(ctx));
}

/// Pops by span id, searching from the innermost end — overlapping
/// guards dropped out of LIFO order each remove exactly their own entry.
fn pop_stack(span_id: u64) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|c| c.span_id == span_id) {
            stack.remove(pos);
        }
    });
}

fn stack_top() -> Option<SpanContext> {
    STACK.with(|s| s.borrow().last().copied())
}

enum Parent {
    /// New trace, fresh ids.
    Fresh,
    /// Nest under the innermost live span on this thread (fresh trace
    /// when the stack is empty).
    Stack,
    /// Resume a remote context (fresh trace when `None`).
    Remote(Option<SpanContext>),
    /// New root of a trace with a caller-chosen id (deterministic
    /// traces); the span id equals the trace id so remote observers can
    /// parent onto the root without knowing its allocation.
    Seeded(u64),
}

/// An RAII traced span: times its scope like [`crate::SpanGuard`] (the
/// duration always lands in the aggregate [`crate::SpanStats`] when
/// telemetry is enabled) and additionally records a [`SpanRecord`] with
/// full identity when tracing is enabled too.
#[must_use = "a trace span times its scope; dropping it immediately records ~0 µs"]
pub struct TraceSpan {
    name: &'static str,
    start: Option<Instant>,
    start_us: u64,
    ctx: Option<SpanContext>,
    parent_id: u64,
    links: Vec<SpanContext>,
    on_stack: bool,
}

impl TraceSpan {
    fn begin(name: &'static str, parent: Parent, attach: bool) -> TraceSpan {
        if !registry::enabled() {
            return TraceSpan {
                name,
                start: None,
                start_us: 0,
                ctx: None,
                parent_id: 0,
                links: Vec::new(),
                on_stack: false,
            };
        }
        let start = Some(Instant::now());
        let (ctx, parent_id, start_us, on_stack) = if registry::trace_enabled() {
            let (trace_id, parent_id, span_id) = match parent {
                Parent::Fresh => (ids::next_id(), 0, ids::next_id()),
                Parent::Stack => match stack_top() {
                    Some(top) => (top.trace_id, top.span_id, ids::next_id()),
                    None => (ids::next_id(), 0, ids::next_id()),
                },
                Parent::Remote(Some(remote)) => (remote.trace_id, remote.span_id, ids::next_id()),
                Parent::Remote(None) => (ids::next_id(), 0, ids::next_id()),
                Parent::Seeded(trace_id) => (trace_id, 0, trace_id),
            };
            let ctx = SpanContext { trace_id, span_id };
            if attach {
                push_stack(ctx);
            }
            (Some(ctx), parent_id, ids::now_us(), attach)
        } else {
            (None, 0, 0, false)
        };
        TraceSpan {
            name,
            start,
            start_us,
            ctx,
            parent_id,
            links: Vec::new(),
            on_stack,
        }
    }

    /// Starts a new trace root on this thread.
    #[inline]
    pub fn root(name: &'static str) -> TraceSpan {
        TraceSpan::begin(name, Parent::Fresh, true)
    }

    /// Starts a span nested under the innermost live [`TraceSpan`] on
    /// this thread (a fresh root when there is none). The common form —
    /// [`crate::trace_span!`] expands to this.
    #[inline]
    pub fn child(name: &'static str) -> TraceSpan {
        TraceSpan::begin(name, Parent::Stack, true)
    }

    /// Resumes a trace received over the wire: the new span is a child
    /// of `parent` when present, a fresh root otherwise.
    #[inline]
    pub fn with_parent(name: &'static str, parent: Option<SpanContext>) -> TraceSpan {
        TraceSpan::begin(name, Parent::Remote(parent), true)
    }

    /// Starts the deterministic root of trace `trace_id` (its span id
    /// equals the trace id — see [`trace_id_from_seed`]).
    #[inline]
    pub fn root_with_trace_id(name: &'static str, trace_id: u64) -> TraceSpan {
        TraceSpan::begin(name, Parent::Seeded(trace_id), true)
    }

    /// Starts a root with caller-chosen ids that is **not** pushed on
    /// the thread's span stack — for guards that are created on one
    /// thread and dropped on another (e.g. a load generator's paced
    /// writer handing the guard to its reply reader).
    #[inline]
    pub fn detached_with_ids(name: &'static str, trace_id: u64, span_id: u64) -> TraceSpan {
        let mut span = TraceSpan::begin(name, Parent::Fresh, false);
        if let Some(ctx) = &mut span.ctx {
            ctx.trace_id = trace_id;
            ctx.span_id = span_id;
        }
        span
    }

    /// The span's wire context, when tracing was live at creation.
    pub fn context(&self) -> Option<SpanContext> {
        self.ctx
    }

    /// Adds a fan-in link: `ctx` was served by this span without being
    /// its parent (batch members). No-op when tracing is off.
    pub fn add_link(&mut self, ctx: SpanContext) {
        if self.ctx.is_some() {
            self.links.push(ctx);
        }
    }

    /// Abandons the span without recording anything.
    pub fn cancel(mut self) {
        if self.on_stack {
            if let Some(ctx) = self.ctx {
                pop_stack(ctx.span_id);
            }
            self.on_stack = false;
        }
        self.start = None;
        self.ctx = None;
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if self.on_stack {
            if let Some(ctx) = self.ctx {
                pop_stack(ctx.span_id);
            }
        }
        let Some(start) = self.start else {
            return;
        };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        registry::record_span_ns(self.name, ns);
        if let Some(ctx) = self.ctx {
            registry::record_trace_span(SpanRecord {
                seq: 0, // stamped by the registry
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent_id: self.parent_id,
                name: self.name,
                start_us: self.start_us,
                dur_us: ns / 1000,
                thread: ids::thread_id(),
                links: std::mem::take(&mut self.links),
            });
        }
    }
}

/// One trace reduced to a table row: identity, root, extent, and shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// The trace id.
    pub trace_id: u64,
    /// Name of the trace's root span (of the earliest captured span when
    /// the root itself was evicted from the ring).
    pub root_name: String,
    /// Earliest captured start, µs since the trace epoch.
    pub start_us: u64,
    /// Extent from earliest start to latest end, µs.
    pub dur_us: u64,
    /// Spans captured for this trace.
    pub spans: u64,
    /// Spans whose parent is neither 0 nor another captured span of the
    /// trace (evicted or never-recorded parents).
    pub orphans: u64,
}

/// Groups raw [`SpanRecord`]s into per-trace [`TraceSummary`] rows,
/// ordered by start time. The reconstruction the `trace` wire verb and
/// the proptests share.
pub fn summarize_traces(spans: &[SpanRecord]) -> Vec<TraceSummary> {
    use std::collections::BTreeMap;
    let mut by_trace: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for span in spans {
        by_trace.entry(span.trace_id).or_default().push(span);
    }
    let mut out: Vec<TraceSummary> = by_trace
        .into_iter()
        .map(|(trace_id, members)| {
            let ids: std::collections::BTreeSet<u64> = members.iter().map(|s| s.span_id).collect();
            let start_us = members.iter().map(|s| s.start_us).min().unwrap_or(0);
            let end_us = members
                .iter()
                .map(|s| s.start_us.saturating_add(s.dur_us))
                .max()
                .unwrap_or(0);
            let root = members
                .iter()
                .filter(|s| s.parent_id == 0)
                .min_by_key(|s| s.start_us)
                .or_else(|| members.iter().min_by_key(|s| s.start_us));
            let orphans = members
                .iter()
                .filter(|s| s.parent_id != 0 && !ids.contains(&s.parent_id))
                .count() as u64;
            TraceSummary {
                trace_id,
                root_name: root.map(|s| s.name.to_string()).unwrap_or_default(),
                start_us,
                dur_us: end_us.saturating_sub(start_us),
                spans: members.len() as u64,
                orphans,
            }
        })
        .collect();
    out.sort_by_key(|t| (t.start_us, t.trace_id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trips() {
        let ctx = SpanContext {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            span_id: 0x0123_4567_89AB_CDEF,
        };
        let header = ctx.to_traceparent();
        assert_eq!(
            header,
            "00-0000000000000000deadbeefcafef00d-0123456789abcdef-01"
        );
        assert_eq!(SpanContext::parse_traceparent(&header), Some(ctx));
    }

    #[test]
    fn traceparent_rejects_malformed_headers() {
        for bad in [
            "",
            "00-short-0123456789abcdef-01",
            "00-0000000000000000deadbeefcafef00d-short-01",
            "00-0000000000000000deadbeefcafef00d-0123456789abcdef", // no flags
            "00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-0123456789abcdef-01",
            "00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace
        ] {
            assert_eq!(SpanContext::parse_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn trace_ring_evicts_oldest_and_counts_drops() {
        let mut log = TraceLog::new(2);
        for i in 0..5u64 {
            log.push(SpanRecord {
                seq: i,
                trace_id: 1,
                span_id: i + 1,
                parent_id: 0,
                name: "t",
                start_us: i,
                dur_us: 1,
                thread: 1,
                links: Vec::new(),
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let seqs: Vec<u64> = log.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn seeded_trace_ids_are_deterministic_and_nonzero() {
        assert_eq!(trace_id_from_seed(42), trace_id_from_seed(42));
        assert_ne!(trace_id_from_seed(42), trace_id_from_seed(43));
        assert_ne!(trace_id_from_seed(0), 0);
    }

    #[test]
    fn summarize_builds_rows_and_counts_orphans() {
        let span = |seq, trace, id, parent, start, dur| SpanRecord {
            seq,
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name: "s",
            start_us: start,
            dur_us: dur,
            thread: 1,
            links: Vec::new(),
        };
        let spans = vec![
            span(0, 7, 1, 0, 10, 100), // root of trace 7
            span(1, 7, 2, 1, 20, 30),  // child
            span(2, 7, 3, 99, 40, 5),  // orphan (parent evicted)
            span(3, 9, 4, 0, 5, 1),    // root of trace 9
        ];
        let rows = summarize_traces(&spans);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].trace_id, 9, "earliest start first");
        let t7 = &rows[1];
        assert_eq!(t7.spans, 3);
        assert_eq!(t7.orphans, 1);
        assert_eq!(t7.start_us, 10);
        assert_eq!(t7.dur_us, 100);
        assert_eq!(t7.root_name, "s");
    }
}
