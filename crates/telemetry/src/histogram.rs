//! The shared log2-bucketed histogram.
//!
//! One histogram type serves every layer: span durations in the registry,
//! the runner's per-job duration histogram (which used to be a bespoke
//! fixed array in `crates/runner/src/progress.rs`), and ad-hoc `observe!`
//! metrics. The bucket semantics are exactly the runner's original ones —
//! a sample lands in bucket `bits(v) - 1` (clamped), so bucket `i` has the
//! exclusive upper bound `2^(i+1)` — which keeps the runner's exported
//! JSON byte-compatible after the migration (see [`Histogram::fold`]).

/// Number of internal buckets. Bucket `i` covers `[2^i, 2^(i+1))`, except
/// bucket 0 which covers `[0, 2)` and the last which is open-ended.
pub const BUCKETS: usize = 32;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket a value lands in: `bits(value) - 1`, clamped to the
    /// bucket range (0 and 1 share bucket 0; values ≥ `2^(BUCKETS-1)` all
    /// land in the last bucket).
    pub fn bucket_index(value: u64) -> usize {
        let bits = (u64::BITS - value.leading_zeros()) as usize;
        bits.saturating_sub(1).min(BUCKETS - 1)
    }

    /// The exclusive upper bound of bucket `index` (`2^(index+1)`); the
    /// last bucket is open-ended in spirit but reports this bound too,
    /// matching the runner's original export.
    pub fn bucket_upper(index: usize) -> u64 {
        1u64 << (index + 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Adds every sample of `other` into `self` (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Folds the 32 internal buckets down to `n`: buckets `0..n-1` map
    /// through unchanged and the tail collapses into bucket `n-1`. With
    /// `n = 20` this reproduces the runner's original 20-bucket layout
    /// (`min(19)` clamp) exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or larger than [`BUCKETS`].
    pub fn fold(&self, n: usize) -> Vec<u64> {
        assert!((1..=BUCKETS).contains(&n), "fold width out of range: {n}");
        let mut out = self.buckets[..n].to_vec();
        out[n - 1] += self.buckets[n..].iter().sum::<u64>();
        out
    }

    /// The p-th quantile, reported as the inclusive upper bound of the
    /// log2 bucket the quantile sample falls in (0 when empty). The
    /// resolution is the bucket width — good to a factor of two, which
    /// is what SLO burn-rate math and latency tables here need.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(BUCKETS - 1)
    }

    /// Bucket-wise saturating difference `self - baseline` (used to carve
    /// per-job deltas out of a thread's running totals).
    pub fn saturating_sub(&self, baseline: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (mine, base)) in self.buckets.iter().zip(baseline.buckets.iter()).enumerate() {
            out.buckets[i] = mine.saturating_sub(*base);
        }
        out.count = self.count.saturating_sub(baseline.count);
        out.sum = self.sum.saturating_sub(baseline.sum);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_semantics_match_runner_originals() {
        // The runner's original duration_bucket: bits - 1, clamped to 19.
        // Ours clamps to 31; below the clamp they must agree.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper(0), 2);
        assert_eq!(Histogram::bucket_upper(9), 1024);
    }

    #[test]
    fn record_merge_fold() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0, 1, 5, 900] {
            a.record(v);
        }
        for v in [2, 1 << 25] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 906 + 2 + (1 << 25));
        let folded = a.fold(20);
        assert_eq!(folded.len(), 20);
        // The 2^25 sample collapses into the last folded bucket.
        assert_eq!(folded[19], 1);
        assert_eq!(folded.iter().sum::<u64>(), 6);
    }

    #[test]
    fn saturating_sub_is_a_delta() {
        let mut before = Histogram::new();
        before.record(3);
        let mut after = before.clone();
        after.record(100);
        after.record(5);
        let delta = after.saturating_sub(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 105);
    }
}
