//! Chrome trace-event / Perfetto-compatible JSON export.
//!
//! Renders trace spans and events into the [Trace Event Format] both
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
//! directly: spans become `"X"` (complete) events with microsecond
//! `ts`/`dur`, placed on one lane per recording thread; registry events
//! become `"i"` (instant) marks on the same timeline. Trace identity
//! travels in `args` (`trace`/`span`/`parent` as 16-hex strings, plus
//! fan-in `links`), so a batch span's membership is inspectable in the
//! UI even though the format itself has no link concept.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::events::Event;
use crate::export::json_escape;
use crate::registry::Snapshot;
use crate::trace::SpanRecord;

fn span_entry(s: &SpanRecord) -> String {
    let links: Vec<String> = s
        .links
        .iter()
        .map(|l| format!("\"{:016x}/{:016x}\"", l.trace_id, l.span_id))
        .collect();
    format!(
        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":1,\"tid\":{},\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\
         \"parent\":\"{:016x}\",\"links\":[{}]}}}}",
        json_escape(s.name),
        s.start_us,
        s.dur_us.max(1),
        s.thread,
        s.trace_id,
        s.span_id,
        s.parent_id,
        links.join(",")
    )
}

fn event_entry(e: &Event) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":0,\
         \"s\":\"p\",\"args\":{{\"detail\":\"{}\"}}}}",
        json_escape(e.name),
        e.ts_us,
        json_escape(&e.detail)
    )
}

/// Renders spans and events as one Chrome trace-event JSON document
/// (`{"traceEvents":[...]}`, the object form both viewers accept).
/// Entries come out in global sequence order.
pub fn chrome_trace_json(spans: &[SpanRecord], events: &[Event]) -> String {
    // Interleave by the shared sequence counter so the document reads in
    // causal order even before the viewer sorts by ts.
    let mut entries: Vec<(u64, String)> = Vec::with_capacity(spans.len() + events.len());
    for s in spans {
        entries.push((s.seq, span_entry(s)));
    }
    for e in events {
        entries.push((e.seq, event_entry(e)));
    }
    entries.sort_by_key(|(seq, _)| *seq);
    let body: Vec<String> = entries.into_iter().map(|(_, line)| line).collect();
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        body.join(",")
    )
}

impl Snapshot {
    /// The snapshot's trace spans and events as a Chrome trace-event
    /// JSON document — write it to a file and open it in Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace_json(&self.trace_spans, &self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanContext;

    fn span(seq: u64, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            seq,
            trace_id: 0xAB,
            span_id: seq + 1,
            parent_id: if seq == 0 { 0 } else { 1 },
            name: "chrome.test",
            start_us: start,
            dur_us: dur,
            thread: 3,
            links: Vec::new(),
        }
    }

    #[test]
    fn spans_render_as_complete_events() {
        let json = chrome_trace_json(&[span(0, 10, 50)], &[]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":50"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"trace\":\"00000000000000ab\""));
        assert!(json.contains("\"parent\":\"0000000000000000\""));
    }

    #[test]
    fn events_render_as_instants_and_order_follows_seq() {
        let e = Event {
            seq: 1,
            ts_us: 25,
            name: "detect",
            detail: "inter".into(),
        };
        let json = chrome_trace_json(&[span(0, 10, 50), span(2, 40, 5)], &[e]);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":25"));
        let instant = json.find("\"ph\":\"i\"").expect("instant entry");
        let first_x = json.find("\"ph\":\"X\"").expect("first span");
        let last_x = json.rfind("\"ph\":\"X\"").expect("second span");
        assert!(first_x < instant && instant < last_x, "seq interleave");
    }

    #[test]
    fn links_carry_member_contexts() {
        let mut s = span(0, 0, 9);
        s.links.push(SpanContext {
            trace_id: 0xC0FFEE,
            span_id: 0x1234,
        });
        let json = chrome_trace_json(&[s], &[]);
        assert!(json.contains("\"links\":[\"0000000000c0ffee/0000000000001234\"]"));
    }

    #[test]
    fn zero_duration_spans_stay_visible() {
        // dur 0 renders as 1 µs so the slice is clickable in the UI.
        let json = chrome_trace_json(&[span(0, 10, 0)], &[]);
        assert!(json.contains("\"dur\":1"));
    }
}
