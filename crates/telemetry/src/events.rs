//! The bounded structured event log.
//!
//! Discrete happenings — an agent mode switch, a Q-table reset, a thermal
//! propagator rebuild, a job retry — are recorded as [`Event`]s into a
//! per-thread ring buffer of fixed capacity. When the ring is full the
//! oldest event is dropped and counted, so a runaway emitter can never
//! grow memory without bound; the drop count is surfaced in snapshots so
//! the loss is visible rather than silent.

use std::collections::VecDeque;

/// A discrete structured event: a globally-ordered sequence number, a
/// static event name (e.g. `"detect"`), and a dynamic detail string
/// (e.g. `"inter"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (one counter across all threads), so events
    /// merged from several shards can be totally ordered.
    pub seq: u64,
    /// Microseconds since the process trace epoch
    /// ([`crate::trace::now_us`]), placing the event on the same
    /// timeline trace spans use — Chrome-trace exports render events as
    /// instants between spans.
    pub ts_us: u64,
    /// The static event name.
    pub name: &'static str,
    /// Free-form detail, empty when the event carries none.
    pub detail: String,
}

impl Event {
    /// The `name:detail` label used when bridging events into trace
    /// recorders (just `name` when the detail is empty) — e.g.
    /// `"detect:intra"`.
    pub fn label(&self) -> String {
        if self.detail.is_empty() {
            self.name.to_string()
        } else {
            format!("{}:{}", self.name, self.detail)
        }
    }
}

/// Default per-thread ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 8192;

/// A bounded ring buffer of [`Event`]s with an overflow drop counter.
#[derive(Clone, Debug)]
pub struct EventLog {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// An empty log holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        EventLog {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting (and counting) the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events have been evicted due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Clones out every held event with `seq >= seq_floor`, oldest-first.
    /// This is the trace-bridge primitive: a consumer keeps a cursor (the
    /// next unseen sequence number) and drains incrementally.
    pub fn since(&self, seq_floor: u64) -> Vec<Event> {
        self.ring
            .iter()
            .filter(|e| e.seq >= seq_floor)
            .cloned()
            .collect()
    }

    /// Removes all events and resets the drop counter.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            ts_us: seq,
            name: "t",
            detail: String::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::new(3);
        for seq in 0..5 {
            log.push(ev(seq));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let seqs: Vec<u64> = log.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn since_drains_from_cursor() {
        let mut log = EventLog::new(8);
        for seq in 0..5 {
            log.push(ev(seq));
        }
        let tail = log.since(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 3);
        assert_eq!(tail[1].seq, 4);
    }

    #[test]
    fn label_joins_name_and_detail() {
        let e = Event {
            seq: 0,
            ts_us: 0,
            name: "detect",
            detail: "intra".into(),
        };
        assert_eq!(e.label(), "detect:intra");
        assert_eq!(ev(0).label(), "t");
    }
}
