//! The flight recorder: post-hoc trace dumps on crash or signal.
//!
//! The per-thread rings already hold the last few thousand spans and
//! events; this module turns them into a *black box*. [`install`] arms
//! three triggers that all funnel into one dump of the ring tails as
//! Chrome trace JSON:
//!
//! * **panic** — a panic hook (chained in front of the existing one)
//!   dumps synchronously before the process unwinds further, so the
//!   file shows what the process was doing when it died;
//! * **SIGUSR1** (Linux) — the handler only stores an `AtomicBool`
//!   (the only async-signal-safe thing it could do); a watcher thread
//!   polls the flag every ~200 ms and performs the dump outside signal
//!   context. `kill -USR1 <pid>` inspects a live, healthy process
//!   without stopping it;
//! * **explicit** — [`request_dump`] sets the same flag
//!   programmatically.
//!
//! The dump keeps the newest [`FLIGHT_LAST`] spans and events (by the
//! shared sequence counter), so its size is bounded no matter how long
//! the process ran.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Duration;

use crate::chrome::chrome_trace_json;
use crate::registry;

/// How many spans (and events) a flight dump keeps, newest first.
pub const FLIGHT_LAST: usize = 2048;

static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
static REQUESTED: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

/// Writes the newest [`FLIGHT_LAST`] spans and events from the registry
/// rings to `path` as Chrome trace JSON.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn flight_dump(path: &Path) -> std::io::Result<()> {
    let snap = registry::snapshot();
    let spans = &snap.trace_spans[snap.trace_spans.len().saturating_sub(FLIGHT_LAST)..];
    let events = &snap.events[snap.events.len().saturating_sub(FLIGHT_LAST)..];
    std::fs::write(path, chrome_trace_json(spans, events) + "\n")
}

fn dump_now(reason: &str) {
    let path = DUMP_PATH
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let Some(path) = path else {
        return;
    };
    match flight_dump(&path) {
        Ok(()) => eprintln!("[telemetry] flight recorder ({reason}): {}", path.display()),
        Err(e) => eprintln!(
            "[telemetry] flight recorder ({reason}) failed for {}: {e}",
            path.display()
        ),
    }
}

/// Requests an asynchronous flight dump (performed by the watcher thread
/// within ~200 ms). Safe to call from anywhere, including signal
/// handlers — it only stores an atomic flag.
pub fn request_dump() {
    REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(target_os = "linux")]
mod sig {
    use std::sync::atomic::Ordering;

    // Raw libc `signal` — the workspace carries no libc crate, and the
    // handler body (one atomic store) is async-signal-safe by
    // construction.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGUSR1: i32 = 10;

    extern "C" fn on_sigusr1(_signum: i32) {
        super::REQUESTED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install_sigusr1() {
        unsafe {
            signal(SIGUSR1, on_sigusr1 as *const () as usize);
        }
    }
}

/// Arms the flight recorder: future panics, `SIGUSR1` (Linux), and
/// [`request_dump`] calls all write the ring tails to `path`. Calling
/// again only retargets the path; the hooks and watcher install once per
/// process.
pub fn install(path: PathBuf) {
    *DUMP_PATH.lock().unwrap_or_else(PoisonError::into_inner) = Some(path);
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_now("panic");
            previous(info);
        }));
        #[cfg(target_os = "linux")]
        sig::install_sigusr1();
        std::thread::Builder::new()
            .name("telemetry-flight".into())
            .spawn(|| loop {
                std::thread::sleep(Duration::from_millis(200));
                if REQUESTED.swap(false, Ordering::Relaxed) {
                    dump_now("signal");
                }
            })
            .expect("spawn flight watcher");
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate as tel;
    use std::time::Instant;

    fn wait_for_file(path: &Path) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if path.exists() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    // One test drives every trigger: the recorder's dump path is a
    // process-global, so splitting these into separate (concurrent)
    // tests would race on it.
    #[test]
    #[cfg(feature = "telemetry")]
    fn panic_hook_signal_and_request_all_dump() {
        tel::set_enabled(true);
        tel::set_trace_enabled(true);
        {
            let _g = tel::TraceSpan::root("flight.test");
        }
        tel::event!("flight.test.event", "armed");
        let dir = std::env::temp_dir().join(format!("thermorl-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Explicit dump, no hooks needed.
        let direct = dir.join("direct.json");
        flight_dump(&direct).expect("direct dump");
        let body = std::fs::read_to_string(&direct).expect("read");
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.contains("flight.test"));

        // Panic hook: a panicking thread writes the dump before
        // unwinding finishes.
        let hooked = dir.join("panic.json");
        install(hooked.clone());
        let worker = std::thread::spawn(|| panic!("flight recorder test panic"));
        assert!(worker.join().is_err(), "worker must panic");
        assert!(hooked.exists(), "panic hook must dump synchronously");

        // request_dump → watcher thread writes within its poll period.
        let requested = dir.join("requested.json");
        install(requested.clone());
        request_dump();
        assert!(wait_for_file(&requested), "watcher must perform the dump");

        // SIGUSR1 → same watcher path, entered from a real signal.
        #[cfg(target_os = "linux")]
        {
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            let signalled = dir.join("signal.json");
            install(signalled.clone());
            unsafe {
                raise(10);
            }
            assert!(wait_for_file(&signalled), "SIGUSR1 must trigger a dump");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
