//! SLO accounting over the registry's log2 latency histograms.
//!
//! An SLO here is "fraction `target` of requests complete within
//! `objective_ns`". Everything is computed from a [`Histogram`] that is
//! already being recorded (span durations), so tracking an SLO costs
//! nothing on the hot path — [`slo_summary`] is pure arithmetic over the
//! 32 bucket counts at read time.
//!
//! The math, bucket-resolution caveats included:
//!
//! * **percentiles** — [`Histogram::percentile`]: the inclusive upper
//!   bound of the bucket holding the p-th sample (good to a factor of
//!   two, the bucket width).
//! * **violations** — a bucket counts as over-objective when its upper
//!   bound exceeds the objective, i.e. when *any* sample in it could
//!   have violated. This over-counts by at most one bucket's worth of
//!   samples, so the reported burn rate is conservative (alerts early,
//!   never late).
//! * **burn rate** — `error_rate / (1 - target)`: the rate at which the
//!   error budget is being consumed. 1.0 means "exactly on budget";
//!   above 1.0 the budget runs out before the window does.

use crate::histogram::Histogram;

/// A latency objective: `target` fraction of requests within
/// `objective_ns`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloConfig {
    /// The latency objective in nanoseconds.
    pub objective_ns: u64,
    /// The target success fraction (e.g. 0.99 allows a 1% error budget).
    pub target: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            // 1 ms at 99%: a decide under the paper's 100 ms epochs has
            // three orders of magnitude of headroom, so breaching this
            // is a real regression, not noise.
            objective_ns: 1_000_000,
            target: 0.99,
        }
    }
}

/// The computed SLO state of one latency histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloSummary {
    /// Samples in the histogram.
    pub count: u64,
    /// Median latency (log2-bucket upper bound), ns.
    pub p50_ns: u64,
    /// 99th-percentile latency (log2-bucket upper bound), ns.
    pub p99_ns: u64,
    /// The objective the summary was computed against, ns.
    pub objective_ns: u64,
    /// The target success fraction.
    pub target: f64,
    /// Samples that may have exceeded the objective (conservative: whole
    /// buckets whose upper bound exceeds it).
    pub over_objective: u64,
    /// `over_objective / count` (0 when empty).
    pub error_rate: f64,
    /// `error_rate / (1 - target)`; 1.0 = consuming the error budget
    /// exactly as fast as allowed.
    pub budget_burn: f64,
}

/// Computes the SLO state of `hist` against `cfg`. Pure arithmetic over
/// the bucket counts; an empty histogram yields an all-zero summary.
pub fn slo_summary(hist: &Histogram, cfg: &SloConfig) -> SloSummary {
    let count = hist.count();
    let over_objective: u64 = hist
        .buckets()
        .iter()
        .enumerate()
        .filter(|(i, _)| Histogram::bucket_upper(*i) > cfg.objective_ns)
        .map(|(_, n)| *n)
        .sum();
    let error_rate = if count == 0 {
        0.0
    } else {
        over_objective as f64 / count as f64
    };
    let budget = (1.0 - cfg.target).max(f64::MIN_POSITIVE);
    SloSummary {
        count,
        p50_ns: hist.percentile(0.50),
        p99_ns: hist.percentile(0.99),
        objective_ns: cfg.objective_ns,
        target: cfg.target,
        over_objective,
        error_rate,
        budget_burn: error_rate / budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = slo_summary(&Histogram::new(), &SloConfig::default());
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.error_rate, 0.0);
        assert_eq!(s.budget_burn, 0.0);
    }

    #[test]
    fn burn_rate_of_exactly_on_budget_is_one() {
        // 99 fast samples, 1 slow: error rate 1%, target 99% → burn 1.0.
        let mut samples = vec![100u64; 99];
        samples.push(1 << 30);
        let s = slo_summary(
            &hist(&samples),
            &SloConfig {
                objective_ns: 1 << 20,
                target: 0.99,
            },
        );
        assert_eq!(s.count, 100);
        assert_eq!(s.over_objective, 1);
        assert!((s.error_rate - 0.01).abs() < 1e-12);
        assert!((s.budget_burn - 1.0).abs() < 1e-9, "burn {}", s.budget_burn);
    }

    #[test]
    fn violations_count_whole_buckets_conservatively() {
        // Objective inside a bucket: the whole bucket counts as over.
        let s = slo_summary(
            &hist(&[700, 700, 100]),
            &SloConfig {
                objective_ns: 600,
                target: 0.5,
            },
        );
        // 700 lands in [512, 1024); its upper bound 1024 > 600 → over.
        assert_eq!(s.over_objective, 2);
        // 100 lands in [64, 128); 128 < 600 → not over.
        assert!((s.error_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.budget_burn - (2.0 / 3.0) / 0.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_come_from_bucket_upper_bounds() {
        let s = slo_summary(&hist(&[1, 1, 1, 100, 100, 10_000]), &SloConfig::default());
        assert_eq!(s.p50_ns, 2);
        assert_eq!(s.p99_ns, 16_384);
    }
}
