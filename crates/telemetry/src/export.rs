//! Snapshot exporters: JSON, Prometheus text, and the human span table.
//!
//! The JSON writer is deliberately dependency-free (this crate sits below
//! `thermorl-sim`, whose `json` module therefore cannot be used here) and
//! emits deterministic output: `BTreeMap` ordering for maps, global
//! sequence order for events, and only non-empty buckets for histograms.

use crate::histogram::Histogram;
use crate::registry::{Snapshot, SpanStats};
use crate::trace::SpanRecord;

/// Escapes a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value (non-finite values become strings,
/// matching `thermorl_sim::json::Value::num`).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

fn histogram_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(i, n)| format!("{{\"le\":{},\"count\":{}}}", Histogram::bucket_upper(i), n))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum(),
        buckets.join(",")
    )
}

fn span_json(s: &SpanStats) -> String {
    let buckets: Vec<String> = s
        .hist
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(i, n)| {
            format!(
                "{{\"le_ns\":{},\"count\":{}}}",
                Histogram::bucket_upper(i),
                n
            )
        })
        .collect();
    format!(
        "{{\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"buckets\":[{}]}}",
        s.count,
        s.total_ns,
        json_num(s.mean_ns()),
        buckets.join(",")
    )
}

impl Snapshot {
    /// Serializes the snapshot as a single JSON object.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_num(*v)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| format!("\"{}\":{}", json_escape(k), histogram_json(h)))
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(k, s)| format!("\"{}\":{}", json_escape(k), span_json(s)))
            .collect();
        let events: Vec<String> = self.events.iter().map(event_json).collect();
        let traces: Vec<String> = self.trace_spans.iter().map(span_record_json).collect();
        let shards: Vec<String> = self
            .shard_occupancy
            .iter()
            .map(|o| {
                format!(
                    "{{\"events\":{},\"events_capacity\":{},\
                     \"trace_spans\":{},\"trace_capacity\":{}}}",
                    o.events, o.events_capacity, o.trace_spans, o.trace_capacity
                )
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}},\
             \"spans\":{{{}}},\"events\":[{}],\"events_dropped\":{},\
             \"trace_spans\":[{}],\"trace_spans_dropped\":{},\"shards\":[{}]}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(","),
            spans.join(","),
            events.join(","),
            self.events_dropped,
            traces.join(","),
            self.trace_spans_dropped,
            shards.join(",")
        )
    }

    /// Serializes the snapshot in Prometheus text exposition format.
    /// Metric names are sanitized (`.` → `_`); span timings export as
    /// `<name>_ns` histograms with cumulative buckets.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            prom_histogram(&mut out, &prom_name(name), hist);
        }
        for (name, stats) in &self.spans {
            prom_histogram(&mut out, &format!("{}_ns", prom_name(name)), &stats.hist);
        }
        out.push_str(&format!(
            "# TYPE telemetry_events_dropped counter\n\
             telemetry_events_dropped {}\n\
             # TYPE telemetry_trace_spans_dropped counter\n\
             telemetry_trace_spans_dropped {}\n",
            self.events_dropped, self.trace_spans_dropped
        ));
        if !self.shard_occupancy.is_empty() {
            out.push_str("# TYPE telemetry_ring_events gauge\n");
            for (i, o) in self.shard_occupancy.iter().enumerate() {
                out.push_str(&format!(
                    "telemetry_ring_events{{shard=\"{i}\"}} {}\n",
                    o.events
                ));
            }
            out.push_str("# TYPE telemetry_ring_events_capacity gauge\n");
            for (i, o) in self.shard_occupancy.iter().enumerate() {
                out.push_str(&format!(
                    "telemetry_ring_events_capacity{{shard=\"{i}\"}} {}\n",
                    o.events_capacity
                ));
            }
            out.push_str("# TYPE telemetry_ring_trace_spans gauge\n");
            for (i, o) in self.shard_occupancy.iter().enumerate() {
                out.push_str(&format!(
                    "telemetry_ring_trace_spans{{shard=\"{i}\"}} {}\n",
                    o.trace_spans
                ));
            }
            out.push_str("# TYPE telemetry_ring_trace_capacity gauge\n");
            for (i, o) in self.shard_occupancy.iter().enumerate() {
                out.push_str(&format!(
                    "telemetry_ring_trace_capacity{{shard=\"{i}\"}} {}\n",
                    o.trace_capacity
                ));
            }
        }
        out
    }

    /// The `n` span names with the largest total time, descending.
    pub fn top_spans(&self, n: usize) -> Vec<(&str, &SpanStats)> {
        let mut spans: Vec<(&str, &SpanStats)> = self
            .spans
            .iter()
            .map(|(name, stats)| (name.as_str(), stats))
            .collect();
        spans.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        spans.truncate(n);
        spans
    }

    /// A human-readable top-`n` span-timing table (empty string when no
    /// spans were recorded), e.g. for the end-of-campaign summary.
    pub fn render_span_table(&self, n: usize) -> String {
        let top = self.top_spans(n);
        if top.is_empty() {
            return String::new();
        }
        let name_width = top
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = format!(
            "{:<name_width$}  {:>10}  {:>12}  {:>10}\n",
            "span", "count", "total_ms", "mean_us"
        );
        for (name, stats) in top {
            out.push_str(&format!(
                "{:<name_width$}  {:>10}  {:>12.1}  {:>10.1}\n",
                name,
                stats.count,
                stats.total_ns as f64 / 1e6,
                stats.mean_ns() / 1e3
            ));
        }
        out
    }
}

fn event_json(e: &crate::events::Event) -> String {
    format!(
        "{{\"seq\":{},\"ts_us\":{},\"name\":\"{}\",\"detail\":\"{}\"}}",
        e.seq,
        e.ts_us,
        json_escape(e.name),
        json_escape(&e.detail)
    )
}

// Trace/span ids export as 16-hex strings: u64 values exceed the 2^53
// integers JSON consumers can hold losslessly.
fn span_record_json(s: &SpanRecord) -> String {
    let links: Vec<String> = s
        .links
        .iter()
        .map(|l| format!("\"{:016x}/{:016x}\"", l.trace_id, l.span_id))
        .collect();
    format!(
        "{{\"seq\":{},\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\",\
         \"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"thread\":{},\"links\":[{}]}}",
        s.seq,
        s.trace_id,
        s.span_id,
        s.parent_id,
        json_escape(s.name),
        s.start_us,
        s.dur_us,
        s.thread,
        links.join(",")
    )
}

/// One event as a standalone JSONL line (used for the `--telemetry`
/// events side-file).
pub fn event_jsonl(e: &crate::events::Event) -> String {
    event_json(e)
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn prom_histogram(out: &mut String, name: &str, hist: &Histogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, n) in hist.buckets().iter().enumerate() {
        if *n == 0 {
            continue;
        }
        cumulative += n;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            Histogram::bucket_upper(i)
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
        hist.count(),
        hist.sum(),
        hist.count()
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("thermal.propagator_builds".into(), 3);
        snap.gauges.insert("agent.alpha".into(), 0.45);
        let mut h = Histogram::new();
        h.record(3);
        h.record(900);
        snap.histograms.insert("runner.job_ms".into(), h);
        let mut s = SpanStats::default();
        s.record(1000);
        s.record(3000);
        snap.spans.insert("engine.decide".into(), s);
        snap.events.push(Event {
            seq: 0,
            ts_us: 42,
            name: "detect",
            detail: "inter".into(),
        });
        snap.trace_spans.push(SpanRecord {
            seq: 1,
            trace_id: 0xAB,
            span_id: 0xCD,
            parent_id: 0,
            name: "serve.request",
            start_us: 5,
            dur_us: 17,
            thread: 2,
            links: Vec::new(),
        });
        snap.trace_spans_dropped = 4;
        snap.shard_occupancy.push(crate::registry::RingOccupancy {
            events: 1,
            events_capacity: 8192,
            trace_spans: 1,
            trace_capacity: 4096,
        });
        snap
    }

    #[test]
    fn json_export_is_well_formed_and_ordered() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"thermal.propagator_builds\":3"));
        assert!(json.contains("\"agent.alpha\":0.45"));
        assert!(json.contains("\"name\":\"detect\""));
        assert!(json.contains("\"detail\":\"inter\""));
        assert!(json.contains("\"total_ns\":4000"));
        assert!(json.contains("\"events_dropped\":0"));
        assert!(json.contains("\"ts_us\":42"));
        assert!(json.contains("\"trace\":\"00000000000000ab\""));
        assert!(json.contains("\"parent\":\"0000000000000000\""));
        assert!(json.contains("\"trace_spans_dropped\":4"));
        assert!(json.contains(
            "\"shards\":[{\"events\":1,\"events_capacity\":8192,\
             \"trace_spans\":1,\"trace_capacity\":4096}]"
        ));
    }

    #[test]
    fn prometheus_export_sanitizes_and_accumulates() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE thermal_propagator_builds counter"));
        assert!(text.contains("thermal_propagator_builds 3"));
        assert!(text.contains("agent_alpha 0.45"));
        assert!(text.contains("engine_decide_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("runner_job_ms_count 2"));
        assert!(text.contains("telemetry_events_dropped 0"));
        assert!(text.contains("telemetry_trace_spans_dropped 4"));
        assert!(text.contains("telemetry_ring_events{shard=\"0\"} 1"));
        assert!(text.contains("telemetry_ring_events_capacity{shard=\"0\"} 8192"));
        assert!(text.contains("telemetry_ring_trace_spans{shard=\"0\"} 1"));
        assert!(text.contains("telemetry_ring_trace_capacity{shard=\"0\"} 4096"));
    }

    #[test]
    fn span_table_ranks_by_total_time() {
        let mut snap = sample_snapshot();
        let mut big = SpanStats::default();
        big.record(1_000_000);
        snap.spans.insert("thermal.step".into(), big);
        let table = snap.render_span_table(5);
        let thermal = table.find("thermal.step").expect("thermal.step row");
        let decide = table.find("engine.decide").expect("engine.decide row");
        assert!(thermal < decide, "larger total must rank first:\n{table}");
        assert!(snap.render_span_table(1).contains("thermal.step"));
        assert!(!snap.render_span_table(1).contains("engine.decide"));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
