//! Property-based tests of the telemetry substrate: the bounded event
//! ring and the per-thread shard merge.

use proptest::prelude::*;
use thermorl_telemetry as tel;
use thermorl_telemetry::{Event, EventLog, Histogram, SpanStats};

fn ev(seq: u64, detail: u64) -> Event {
    Event {
        seq,
        ts_us: seq,
        name: "prop",
        detail: detail.to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring never exceeds its capacity, keeps the newest events in
    /// insertion order, and counts exactly the evicted ones.
    #[test]
    fn ring_bounds_order_and_drop_count(
        capacity in 1usize..9,
        details in proptest::collection::vec(0u64..1000, 0..40),
    ) {
        let mut log = EventLog::new(capacity);
        for (i, &d) in details.iter().enumerate() {
            log.push(ev(i as u64, d));
        }
        prop_assert!(log.len() <= capacity);
        prop_assert_eq!(log.capacity(), capacity);
        let expected_dropped = details.len().saturating_sub(capacity) as u64;
        prop_assert_eq!(log.dropped(), expected_dropped);
        // The survivors are exactly the newest `len` events, in order.
        let kept: Vec<&Event> = log.iter().collect();
        let tail = &details[details.len() - log.len()..];
        for (i, (event, &detail)) in kept.iter().zip(tail.iter()).enumerate() {
            prop_assert_eq!(event.seq, (details.len() - log.len() + i) as u64);
            prop_assert_eq!(&event.detail, &detail.to_string());
        }
        // `since` returns a suffix consistent with `iter`.
        if let Some(first) = kept.first() {
            prop_assert_eq!(log.since(first.seq).len(), log.len());
            prop_assert_eq!(log.since(first.seq + 1).len(), log.len() - 1);
        }
    }

    /// Merging N concurrently-recorded shards yields exactly what serial
    /// recording of the concatenated operations would.
    #[test]
    fn shard_merge_equals_serial_recording(
        per_shard in proptest::collection::vec(
            proptest::collection::vec((0usize..3, 1u64..1_000_000), 0..40),
            1..5,
        ),
    ) {
        const NAMES: [&str; 3] = ["merge.a", "merge.b", "merge.c"];
        tel::set_enabled(true);
        let baseline = tel::snapshot();

        let threads: Vec<_> = per_shard
            .iter()
            .cloned()
            .map(|ops| {
                std::thread::spawn(move || {
                    for (idx, value) in ops {
                        tel::counter_add(NAMES[idx], value);
                        tel::observe_value(NAMES[idx], value);
                        tel::record_span_ns(NAMES[idx], value);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("shard thread");
        }

        let delta = tel::snapshot().since(&baseline);

        // Serial reference: one pass over the concatenation.
        let mut counters = [0u64; 3];
        let mut hists: [Histogram; 3] = Default::default();
        let mut spans: [SpanStats; 3] = Default::default();
        for ops in &per_shard {
            for &(idx, value) in ops {
                counters[idx] += value;
                hists[idx].record(value);
                spans[idx].record(value);
            }
        }
        for (i, name) in NAMES.iter().enumerate() {
            prop_assert_eq!(
                delta.counters.get(*name).copied().unwrap_or(0),
                counters[i]
            );
            match delta.histograms.get(*name) {
                Some(h) => prop_assert_eq!(h, &hists[i]),
                None => prop_assert!(hists[i].is_empty()),
            }
            match delta.spans.get(*name) {
                Some(s) => prop_assert_eq!(s, &spans[i]),
                None => prop_assert_eq!(spans[i].count, 0),
            }
        }
    }
}

/// Events recorded from several threads merge into one globally-ordered
/// stream with strictly increasing, unique sequence numbers.
#[test]
fn merged_events_are_globally_ordered() {
    tel::set_enabled(true);
    let baseline = tel::snapshot();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..50 {
                    tel::record_event("order", format!("{t}/{i}"));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("event thread");
    }
    let delta = tel::snapshot().since(&baseline);
    let ours: Vec<&Event> = delta.events.iter().filter(|e| e.name == "order").collect();
    assert_eq!(ours.len(), 200);
    for pair in ours.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "events must be strictly ordered");
    }
    // Per-thread relative order survives the merge.
    for t in 0..4 {
        let per_thread: Vec<usize> = ours
            .iter()
            .filter_map(|e| e.detail.strip_prefix(&format!("{t}/"))?.parse().ok())
            .collect();
        assert_eq!(per_thread, (0..50).collect::<Vec<usize>>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any mix of nested and overlapping spans on one thread — children
    /// opened while earlier siblings are still live, spans closed out of
    /// LIFO order — reconstructs into one well-formed tree: every parent
    /// id resolves within the trace and [`tel::summarize_traces`]
    /// reports zero orphans.
    #[test]
    fn span_trees_reconstruct_without_orphans(
        ops in proptest::collection::vec((any::<bool>(), 0usize..8), 1..16),
    ) {
        tel::set_enabled(true);
        tel::set_trace_enabled(true);
        let root = tel::TraceSpan::root("prop.tree.root");
        let trace_id = root.context().expect("tracing is on").trace_id;

        let mut open: Vec<tel::TraceSpan> = Vec::new();
        let mut created = 0usize;
        for &(close, pick) in &ops {
            if close && !open.is_empty() {
                // Close an arbitrary open span — not necessarily the
                // newest, so drops interleave non-LIFO.
                drop(open.remove(pick % open.len()));
            } else {
                // Open a child of whatever is innermost right now.
                open.push(tel::TraceSpan::child("prop.tree.node"));
                created += 1;
            }
        }
        drop(open);
        drop(root);

        let snap = tel::snapshot();
        let ours: Vec<_> = snap
            .trace_spans
            .iter()
            .filter(|r| r.trace_id == trace_id)
            .collect();
        prop_assert_eq!(ours.len(), created + 1);
        let ids: std::collections::HashSet<u64> = ours.iter().map(|r| r.span_id).collect();
        for r in &ours {
            prop_assert!(
                r.parent_id == 0 || ids.contains(&r.parent_id),
                "span {:016x} has unresolved parent {:016x}",
                r.span_id,
                r.parent_id
            );
        }
        let summaries = tel::summarize_traces(&snap.trace_spans);
        let s = summaries
            .iter()
            .find(|s| s.trace_id == trace_id)
            .expect("our trace is summarized");
        prop_assert_eq!(s.spans, (created + 1) as u64);
        prop_assert_eq!(s.orphans, 0u64);
        prop_assert_eq!(&s.root_name, "prop.tree.root");
    }

    /// A parent context carried across threads (the wire-propagation
    /// path) keeps every remote child in the same trace: worker spans on
    /// other threads parent onto the root, their nested spans parent
    /// onto them, and the reconstructed trace has no orphans.
    #[test]
    fn cross_thread_parents_propagate(
        workers in 1usize..5,
        nested in 1usize..4,
    ) {
        tel::set_enabled(true);
        tel::set_trace_enabled(true);
        let root = tel::TraceSpan::root("prop.x.root");
        let ctx = root.context().expect("tracing is on");

        let threads: Vec<_> = (0..workers)
            .map(|_| {
                std::thread::spawn(move || {
                    let worker = tel::TraceSpan::with_parent("prop.x.worker", Some(ctx));
                    for _ in 0..nested {
                        let _inner = tel::TraceSpan::child("prop.x.inner");
                    }
                    drop(worker);
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread");
        }
        drop(root);

        let snap = tel::snapshot();
        let ours: Vec<_> = snap
            .trace_spans
            .iter()
            .filter(|r| r.trace_id == ctx.trace_id)
            .collect();
        prop_assert_eq!(ours.len(), 1 + workers * (1 + nested));
        let ids: std::collections::HashSet<u64> = ours.iter().map(|r| r.span_id).collect();
        for r in &ours {
            prop_assert!(r.parent_id == 0 || ids.contains(&r.parent_id));
        }
        // Worker spans landed on distinct threads yet parent straight
        // onto the root span.
        for r in ours.iter().filter(|r| r.name == "prop.x.worker") {
            prop_assert_eq!(r.parent_id, ctx.span_id);
        }
        let summaries = tel::summarize_traces(&snap.trace_spans);
        let s = summaries
            .iter()
            .find(|s| s.trace_id == ctx.trace_id)
            .expect("our trace is summarized");
        prop_assert_eq!(s.orphans, 0u64);
        prop_assert_eq!(&s.root_name, "prop.x.root");
    }
}
