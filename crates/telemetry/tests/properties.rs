//! Property-based tests of the telemetry substrate: the bounded event
//! ring and the per-thread shard merge.

use proptest::prelude::*;
use thermorl_telemetry as tel;
use thermorl_telemetry::{Event, EventLog, Histogram, SpanStats};

fn ev(seq: u64, detail: u64) -> Event {
    Event {
        seq,
        name: "prop",
        detail: detail.to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring never exceeds its capacity, keeps the newest events in
    /// insertion order, and counts exactly the evicted ones.
    #[test]
    fn ring_bounds_order_and_drop_count(
        capacity in 1usize..9,
        details in proptest::collection::vec(0u64..1000, 0..40),
    ) {
        let mut log = EventLog::new(capacity);
        for (i, &d) in details.iter().enumerate() {
            log.push(ev(i as u64, d));
        }
        prop_assert!(log.len() <= capacity);
        prop_assert_eq!(log.capacity(), capacity);
        let expected_dropped = details.len().saturating_sub(capacity) as u64;
        prop_assert_eq!(log.dropped(), expected_dropped);
        // The survivors are exactly the newest `len` events, in order.
        let kept: Vec<&Event> = log.iter().collect();
        let tail = &details[details.len() - log.len()..];
        for (i, (event, &detail)) in kept.iter().zip(tail.iter()).enumerate() {
            prop_assert_eq!(event.seq, (details.len() - log.len() + i) as u64);
            prop_assert_eq!(&event.detail, &detail.to_string());
        }
        // `since` returns a suffix consistent with `iter`.
        if let Some(first) = kept.first() {
            prop_assert_eq!(log.since(first.seq).len(), log.len());
            prop_assert_eq!(log.since(first.seq + 1).len(), log.len() - 1);
        }
    }

    /// Merging N concurrently-recorded shards yields exactly what serial
    /// recording of the concatenated operations would.
    #[test]
    fn shard_merge_equals_serial_recording(
        per_shard in proptest::collection::vec(
            proptest::collection::vec((0usize..3, 1u64..1_000_000), 0..40),
            1..5,
        ),
    ) {
        const NAMES: [&str; 3] = ["merge.a", "merge.b", "merge.c"];
        tel::set_enabled(true);
        let baseline = tel::snapshot();

        let threads: Vec<_> = per_shard
            .iter()
            .cloned()
            .map(|ops| {
                std::thread::spawn(move || {
                    for (idx, value) in ops {
                        tel::counter_add(NAMES[idx], value);
                        tel::observe_value(NAMES[idx], value);
                        tel::record_span_ns(NAMES[idx], value);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("shard thread");
        }

        let delta = tel::snapshot().since(&baseline);

        // Serial reference: one pass over the concatenation.
        let mut counters = [0u64; 3];
        let mut hists: [Histogram; 3] = Default::default();
        let mut spans: [SpanStats; 3] = Default::default();
        for ops in &per_shard {
            for &(idx, value) in ops {
                counters[idx] += value;
                hists[idx].record(value);
                spans[idx].record(value);
            }
        }
        for (i, name) in NAMES.iter().enumerate() {
            prop_assert_eq!(
                delta.counters.get(*name).copied().unwrap_or(0),
                counters[i]
            );
            match delta.histograms.get(*name) {
                Some(h) => prop_assert_eq!(h, &hists[i]),
                None => prop_assert!(hists[i].is_empty()),
            }
            match delta.spans.get(*name) {
                Some(s) => prop_assert_eq!(s, &spans[i]),
                None => prop_assert_eq!(spans[i].count, 0),
            }
        }
    }
}

/// Events recorded from several threads merge into one globally-ordered
/// stream with strictly increasing, unique sequence numbers.
#[test]
fn merged_events_are_globally_ordered() {
    tel::set_enabled(true);
    let baseline = tel::snapshot();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..50 {
                    tel::record_event("order", format!("{t}/{i}"));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("event thread");
    }
    let delta = tel::snapshot().since(&baseline);
    let ours: Vec<&Event> = delta.events.iter().filter(|e| e.name == "order").collect();
    assert_eq!(ours.len(), 200);
    for pair in ours.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "events must be strictly ordered");
    }
    // Per-thread relative order survives the merge.
    for t in 0..4 {
        let per_thread: Vec<usize> = ours
            .iter()
            .filter_map(|e| e.detail.strip_prefix(&format!("{t}/"))?.parse().ok())
            .collect();
        assert_eq!(per_thread, (0..50).collect::<Vec<usize>>());
    }
}
