//! Proves the disabled path records nothing and allocates nothing.
//!
//! This binary never calls `set_enabled(true)`, so the runtime switch
//! stays at its default (`false`) for the whole process — the test would
//! be meaningless inside the crate's unit-test binary, where other tests
//! enable recording. A counting global allocator additionally shows the
//! disabled hot path is allocation-free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use thermorl_telemetry as tel;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn boom() -> String {
    panic!("event detail evaluated while disabled")
}

#[test]
fn disabled_path_records_nothing_and_never_allocates() {
    assert!(!tel::enabled(), "recording must be off by default");

    let allocs = allocs_during(|| {
        for i in 0..1000u64 {
            tel::counter!("disabled.counter");
            tel::counter!("disabled.counter", i);
            tel::gauge!("disabled.gauge", i as f64);
            tel::observe!("disabled.hist", i);
            let _g = tel::span!("disabled.span");
            // The format arguments must not even be evaluated.
            tel::event!("disabled.event", "{}", boom());
        }
    });
    assert_eq!(allocs, 0, "disabled recording must not allocate");

    assert!(
        tel::snapshot().is_empty(),
        "nothing may reach the registry while disabled"
    );
    assert!(tel::thread_snapshot().is_empty());
    assert!(tel::thread_events_since(0).is_empty());
}
