//! Simulated multicore platform: the "hardware + Linux" substrate of the
//! DAC'14 reproduction.
//!
//! The paper's run-time system acts on a real Intel quad-core through two
//! OS interfaces — `sched_setaffinity` (thread-to-core affinity masks) and
//! `cpufreq` governors — and observes it through perf counters and an
//! energy meter. This crate rebuilds those mechanisms:
//!
//! * [`OppTable`] / [`OperatingPoint`] — DVFS frequency/voltage pairs,
//! * [`PowerModel`] — dynamic `a·C·V²·f` power plus temperature-dependent
//!   leakage, with a likwid-style [`EnergyMeter`],
//! * [`GovernorKind`] — the five cpufreq governors the paper's action space
//!   uses (ondemand, conservative, performance, powersave, userspace),
//! * [`AffinityMask`] / [`ThreadAssignment`] — affinity control,
//! * [`Scheduler`] — per-core runqueues with Linux-style periodic load
//!   balancing that respects affinity masks,
//! * [`CounterModel`] — synthetic cache-miss/page-fault counters,
//! * [`Machine`] — everything wired together behind one `tick` call.
//!
//! # Example
//!
//! ```
//! use thermorl_platform::{AffinityMask, Machine, MachineConfig, ThreadDemand};
//!
//! let mut m = Machine::new(MachineConfig::default(), 7);
//! let t = m.add_thread(AffinityMask::all(4));
//! let demands = vec![ThreadDemand { runnable: true, activity: 0.9 }];
//! let tick = m.tick(0.01, &demands, &[40.0, 40.0, 40.0, 40.0]);
//! assert!(tick.exec_seconds[t.index()] > 0.0);
//! ```

#![deny(missing_docs)]

pub mod affinity;
pub mod counters;
pub mod governor;
pub mod hetero;
pub mod machine;
pub mod opp;
pub mod power;
pub mod scheduler;

pub use affinity::{assignment_presets, AffinityMask, ThreadAssignment};
pub use counters::{CounterModel, CounterSnapshot};
pub use governor::{GovernorKind, GovernorState};
pub use hetero::{big_little_quad, CoreClass};
pub use machine::{Machine, MachineConfig, MachineTick};
pub use opp::{OperatingPoint, OppTable};
pub use power::{EnergyMeter, PowerModel};
pub use scheduler::{Scheduler, SchedulerConfig, ThreadDemand, ThreadId, TickResult};
