//! Synthetic performance counters (`perf`-style).
//!
//! The paper monitors performance with perf \[1\] and uses cache-misses and
//! page-faults to quantify the run-time system's overhead when sweeping the
//! temperature sampling interval (Figure 6). This model reproduces the
//! relevant causal structure:
//!
//! * executing instructions costs cache misses proportional to the
//!   workload's memory intensity, inflated by co-located threads fighting
//!   over the shared cache,
//! * every migration costs a burst of misses and faults (cold caches,
//!   page-table churn),
//! * every controller *sensor sample* and *decision* costs a fixed burst —
//!   which is why both counters fall as the sampling interval grows.

use serde::{Deserialize, Serialize};

/// Counter cost coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterParams {
    /// Instructions per cycle of the modelled cores.
    pub ipc: f64,
    /// Cache misses per instruction at unit memory intensity.
    pub base_miss_rate: f64,
    /// Extra miss fraction per co-located runnable thread.
    pub colocation_miss_factor: f64,
    /// Cache misses charged per thread migration.
    pub migration_miss_burst: f64,
    /// Page faults charged per thread migration.
    pub migration_fault_burst: f64,
    /// Cache misses charged per controller sensor sample.
    pub sample_miss_cost: f64,
    /// Page faults charged per controller sensor sample.
    pub sample_fault_cost: f64,
    /// Cache misses charged per controller decision (Q-table access,
    /// affinity/governor syscalls).
    pub decision_miss_cost: f64,
    /// Page faults charged per controller decision.
    pub decision_fault_cost: f64,
}

impl Default for CounterParams {
    fn default() -> Self {
        CounterParams {
            ipc: 1.5,
            base_miss_rate: 2.0e-3,
            colocation_miss_factor: 0.35,
            migration_miss_burst: 150_000.0,
            migration_fault_burst: 40.0,
            sample_miss_cost: 60_000.0,
            sample_fault_cost: 12.0,
            decision_miss_cost: 250_000.0,
            decision_fault_cost: 80.0,
        }
    }
}

/// Monotonically increasing counter values, like reading `perf stat`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Retired instructions.
    pub instructions: f64,
    /// Last-level cache misses.
    pub cache_misses: f64,
    /// Page faults.
    pub page_faults: f64,
    /// Thread migrations.
    pub migrations: u64,
}

impl CounterSnapshot {
    /// Element-wise difference `self - earlier`, for windowed rates.
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            instructions: self.instructions - earlier.instructions,
            cache_misses: self.cache_misses - earlier.cache_misses,
            page_faults: self.page_faults - earlier.page_faults,
            migrations: self.migrations - earlier.migrations,
        }
    }
}

/// The counter model: feed it execution and overhead events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterModel {
    params: CounterParams,
    totals: CounterSnapshot,
}

impl CounterModel {
    /// Creates a model with the given coefficients.
    pub fn new(params: CounterParams) -> Self {
        CounterModel {
            params,
            totals: CounterSnapshot::default(),
        }
    }

    /// The coefficients in use.
    pub fn params(&self) -> &CounterParams {
        &self.params
    }

    /// Records `giga_cycles` executed by a thread of `mem_intensity`
    /// (0–1) that shared its core with `co_runners` other runnable threads.
    pub fn record_execution(&mut self, giga_cycles: f64, mem_intensity: f64, co_runners: usize) {
        let instructions = giga_cycles * 1e9 * self.params.ipc;
        self.totals.instructions += instructions;
        let miss_rate = self.params.base_miss_rate
            * mem_intensity
            * (1.0 + self.params.colocation_miss_factor * co_runners as f64);
        self.totals.cache_misses += instructions * miss_rate;
    }

    /// Records `n` thread migrations.
    pub fn record_migrations(&mut self, n: u64) {
        self.totals.migrations += n;
        self.totals.cache_misses += n as f64 * self.params.migration_miss_burst;
        self.totals.page_faults += n as f64 * self.params.migration_fault_burst;
    }

    /// Records one controller sensor-sampling pass.
    pub fn record_sample_overhead(&mut self) {
        self.totals.cache_misses += self.params.sample_miss_cost;
        self.totals.page_faults += self.params.sample_fault_cost;
    }

    /// Records one controller decision (action selection + enforcement).
    pub fn record_decision_overhead(&mut self) {
        self.totals.cache_misses += self.params.decision_miss_cost;
        self.totals.page_faults += self.params.decision_fault_cost;
    }

    /// Current counter totals.
    pub fn snapshot(&self) -> CounterSnapshot {
        self.totals
    }
}

impl Default for CounterModel {
    fn default() -> Self {
        CounterModel::new(CounterParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_generates_instructions_and_misses() {
        let mut c = CounterModel::default();
        c.record_execution(1.0, 0.5, 0);
        let s = c.snapshot();
        assert!((s.instructions - 1.5e9).abs() < 1.0);
        assert!(s.cache_misses > 0.0);
        assert_eq!(s.page_faults, 0.0);
    }

    #[test]
    fn colocation_inflates_misses() {
        let mut solo = CounterModel::default();
        let mut shared = CounterModel::default();
        solo.record_execution(1.0, 0.5, 0);
        shared.record_execution(1.0, 0.5, 3);
        assert!(shared.snapshot().cache_misses > solo.snapshot().cache_misses);
    }

    #[test]
    fn memory_intensity_scales_misses_linearly() {
        let mut lo = CounterModel::default();
        let mut hi = CounterModel::default();
        lo.record_execution(1.0, 0.25, 0);
        hi.record_execution(1.0, 0.75, 0);
        let ratio = hi.snapshot().cache_misses / lo.snapshot().cache_misses;
        assert!((ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn migrations_burst_both_counters() {
        let mut c = CounterModel::default();
        c.record_migrations(4);
        let s = c.snapshot();
        assert_eq!(s.migrations, 4);
        assert!((s.cache_misses - 600_000.0).abs() < 1e-6);
        assert!((s.page_faults - 160.0).abs() < 1e-9);
    }

    #[test]
    fn controller_overheads_accumulate() {
        let mut c = CounterModel::default();
        for _ in 0..10 {
            c.record_sample_overhead();
        }
        c.record_decision_overhead();
        let s = c.snapshot();
        assert!((s.cache_misses - (600_000.0 + 250_000.0)).abs() < 1e-6);
        assert!((s.page_faults - 200.0).abs() < 1e-9);
    }

    #[test]
    fn delta_subtracts() {
        let mut c = CounterModel::default();
        c.record_execution(1.0, 1.0, 0);
        let early = c.snapshot();
        c.record_execution(2.0, 1.0, 0);
        c.record_migrations(1);
        let d = c.snapshot().delta(&early);
        assert!((d.instructions - 3.0e9).abs() < 1.0);
        assert_eq!(d.migrations, 1);
    }
}
