//! Heterogeneous core support (the paper's §7 future-work extension).
//!
//! A [`CoreClass`] scales one core's effective frequency and power draw
//! relative to the baseline OPP table, which is enough to model
//! big.LITTLE-style asymmetric multicores: "little" cores execute fewer
//! cycles per second at the same OPP index and burn proportionally less
//! power, so thread placement gains a new lifetime lever (hot threads can
//! be parked on slow-cool cores).

use serde::{Deserialize, Serialize};

/// Per-core performance/power scaling relative to the OPP table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreClass {
    /// Class label, e.g. `"big"` / `"little"`.
    pub name: String,
    /// Multiplier on the core's effective clock (work per second).
    pub freq_scale: f64,
    /// Multiplier on the core's dynamic and leakage power.
    pub power_scale: f64,
}

impl CoreClass {
    /// A full-performance core (the homogeneous default).
    pub fn big() -> Self {
        CoreClass {
            name: "big".to_string(),
            freq_scale: 1.0,
            power_scale: 1.0,
        }
    }

    /// An efficiency core: 60 % of the speed for 35 % of the power
    /// (representative of Arm big.LITTLE pairings).
    pub fn little() -> Self {
        CoreClass {
            name: "little".to_string(),
            freq_scale: 0.6,
            power_scale: 0.35,
        }
    }

    /// Validates physical sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.freq_scale <= 0.0 || self.freq_scale > 2.0 {
            return Err("freq_scale must be in (0, 2]".into());
        }
        if self.power_scale <= 0.0 || self.power_scale > 2.0 {
            return Err("power_scale must be in (0, 2]".into());
        }
        Ok(())
    }
}

impl Default for CoreClass {
    fn default() -> Self {
        CoreClass::big()
    }
}

/// A 2-big + 2-little quad-core layout (cores 0,1 big; 2,3 little).
pub fn big_little_quad() -> Vec<CoreClass> {
    vec![
        CoreClass::big(),
        CoreClass::big(),
        CoreClass::little(),
        CoreClass::little(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(CoreClass::big().validate().is_ok());
        assert!(CoreClass::little().validate().is_ok());
        assert_eq!(CoreClass::default(), CoreClass::big());
    }

    #[test]
    fn little_is_slower_and_cooler() {
        let little = CoreClass::little();
        assert!(little.freq_scale < 1.0);
        assert!(little.power_scale < little.freq_scale, "perf/W advantage");
    }

    #[test]
    fn big_little_layout() {
        let layout = big_little_quad();
        assert_eq!(layout.len(), 4);
        assert_eq!(layout[0].name, "big");
        assert_eq!(layout[3].name, "little");
    }

    #[test]
    fn validation_rejects_nonphysical() {
        let bad = CoreClass {
            name: "x".into(),
            freq_scale: 0.0,
            power_scale: 1.0,
        };
        assert!(bad.validate().is_err());
        let bad = CoreClass {
            name: "x".into(),
            freq_scale: 1.0,
            power_scale: 3.0,
        };
        assert!(bad.validate().is_err());
    }
}
