//! The five cpufreq governors of the paper's action space.
//!
//! Decision rules follow the kernel documentation (and Pallipadi &
//! Starikovskiy's OLS'06 ondemand paper, the paper's \[13\]):
//!
//! * **ondemand** — jump straight to the highest frequency when utilisation
//!   crosses `up_threshold`; otherwise pick the lowest frequency that would
//!   keep utilisation below the threshold.
//! * **conservative** — step one frequency up/down when utilisation crosses
//!   the up/down thresholds (graceful, battery-oriented).
//! * **performance** / **powersave** — pin to the highest/lowest point.
//! * **userspace** — pin to an explicitly chosen operating point (the RL
//!   agent uses three such frequencies, §5.1).
//! * **schedutil** — the *modern* kernel default (post-4.7), included as an
//!   extension beyond the paper's 2014 platform: frequency proportional to
//!   utilisation with a 25 % headroom factor.

use serde::{Deserialize, Serialize};

use crate::opp::OppTable;

/// Which cpufreq governor drives a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GovernorKind {
    /// Kernel default on the paper's platform: aggressive ramp-up.
    Ondemand,
    /// Gradual one-step frequency changes.
    Conservative,
    /// Always the highest frequency.
    Performance,
    /// Always the lowest frequency.
    Powersave,
    /// Fixed user-chosen OPP index (`cpufreq-set -g userspace`).
    Userspace(usize),
    /// Modern utilisation-proportional governor (extension; not part of
    /// the paper's 2014 action space).
    Schedutil,
}

impl std::fmt::Display for GovernorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GovernorKind::Ondemand => write!(f, "ondemand"),
            GovernorKind::Conservative => write!(f, "conservative"),
            GovernorKind::Performance => write!(f, "performance"),
            GovernorKind::Powersave => write!(f, "powersave"),
            GovernorKind::Userspace(i) => write!(f, "userspace[{i}]"),
            GovernorKind::Schedutil => write!(f, "schedutil"),
        }
    }
}

/// Tunables shared by the dynamic governors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorTunables {
    /// Utilisation evaluation period in seconds (kernel sampling rate).
    pub sampling_period: f64,
    /// Ondemand/conservative ramp-up threshold (fraction of busy time).
    pub up_threshold: f64,
    /// Conservative step-down threshold.
    pub down_threshold: f64,
}

impl Default for GovernorTunables {
    fn default() -> Self {
        GovernorTunables {
            sampling_period: 0.1,
            up_threshold: 0.95,
            down_threshold: 0.20,
        }
    }
}

/// Per-core governor state machine: feed it busy time, it returns OPP
/// changes.
///
/// # Example
///
/// ```
/// use thermorl_platform::{GovernorKind, GovernorState, OppTable};
///
/// let table = OppTable::intel_quad();
/// let mut gov = GovernorState::new(GovernorKind::Ondemand, &table);
/// // A fully busy 100 ms window triggers a jump to fmax.
/// let change = gov.observe(0.1, 1.0, &table);
/// assert_eq!(change, Some(table.max_index()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorState {
    kind: GovernorKind,
    tunables: GovernorTunables,
    current: usize,
    window_time: f64,
    window_busy: f64,
}

impl GovernorState {
    /// Creates governor state with default tunables; the initial OPP is the
    /// governor's natural resting point.
    pub fn new(kind: GovernorKind, table: &OppTable) -> Self {
        GovernorState::with_tunables(kind, table, GovernorTunables::default())
    }

    /// Creates governor state with explicit tunables.
    ///
    /// # Panics
    ///
    /// Panics if a `Userspace` index is out of the table's range.
    pub fn with_tunables(kind: GovernorKind, table: &OppTable, tunables: GovernorTunables) -> Self {
        let current = match kind {
            GovernorKind::Performance => table.max_index(),
            GovernorKind::Powersave => table.min_index(),
            GovernorKind::Ondemand | GovernorKind::Conservative | GovernorKind::Schedutil => {
                table.min_index()
            }
            GovernorKind::Userspace(i) => {
                assert!(i < table.len(), "userspace OPP index {i} out of range");
                i
            }
        };
        GovernorState {
            kind,
            tunables,
            current,
            window_time: 0.0,
            window_busy: 0.0,
        }
    }

    /// The governor kind.
    pub fn kind(&self) -> GovernorKind {
        self.kind
    }

    /// The OPP index the governor currently requests.
    pub fn current_index(&self) -> usize {
        self.current
    }

    /// Switches the governor (e.g. when the RL agent's action changes);
    /// returns the OPP index the new governor starts at. State is reset but
    /// dynamic governors keep the current frequency until their first
    /// evaluation, like the kernel does.
    pub fn switch(&mut self, kind: GovernorKind, table: &OppTable) -> usize {
        let keep = self.current;
        *self = GovernorState::with_tunables(kind, table, self.tunables);
        if matches!(
            kind,
            GovernorKind::Ondemand | GovernorKind::Conservative | GovernorKind::Schedutil
        ) {
            self.current = keep;
        }
        self.current
    }

    /// Accumulates `dt` seconds of which `busy_frac` were busy; returns
    /// `Some(new_index)` when an evaluation period elapses and the governor
    /// decides to change frequency.
    pub fn observe(&mut self, dt: f64, busy_frac: f64, table: &OppTable) -> Option<usize> {
        match self.kind {
            GovernorKind::Performance | GovernorKind::Powersave | GovernorKind::Userspace(_) => {
                None
            }
            GovernorKind::Ondemand | GovernorKind::Conservative | GovernorKind::Schedutil => {
                self.window_time += dt;
                self.window_busy += dt * busy_frac.clamp(0.0, 1.0);
                if self.window_time + 1e-12 < self.tunables.sampling_period {
                    return None;
                }
                let util = self.window_busy / self.window_time;
                self.window_time = 0.0;
                self.window_busy = 0.0;
                let next = match self.kind {
                    GovernorKind::Schedutil => {
                        // next_freq = 1.25 * f_max * util, snapped upward.
                        let target = 1.25 * table.get(table.max_index()).freq_ghz * util;
                        table.ceil_index(target)
                    }
                    GovernorKind::Ondemand => {
                        if util >= self.tunables.up_threshold {
                            table.max_index()
                        } else {
                            // Lowest frequency that keeps utilisation below
                            // the threshold at the *current* workload.
                            let cur_freq = table.get(self.current).freq_ghz;
                            let needed = cur_freq * util / self.tunables.up_threshold;
                            table.ceil_index(needed)
                        }
                    }
                    GovernorKind::Conservative => {
                        if util >= self.tunables.up_threshold {
                            (self.current + 1).min(table.max_index())
                        } else if util <= self.tunables.down_threshold {
                            self.current.saturating_sub(1)
                        } else {
                            self.current
                        }
                    }
                    _ => unreachable!(),
                };
                if next != self.current {
                    self.current = next;
                    Some(next)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> OppTable {
        OppTable::intel_quad()
    }

    #[test]
    fn static_governors_never_change() {
        let t = table();
        let mut perf = GovernorState::new(GovernorKind::Performance, &t);
        let mut save = GovernorState::new(GovernorKind::Powersave, &t);
        let mut user = GovernorState::new(GovernorKind::Userspace(2), &t);
        for _ in 0..100 {
            assert_eq!(perf.observe(0.1, 1.0, &t), None);
            assert_eq!(save.observe(0.1, 1.0, &t), None);
            assert_eq!(user.observe(0.1, 0.0, &t), None);
        }
        assert_eq!(perf.current_index(), t.max_index());
        assert_eq!(save.current_index(), 0);
        assert_eq!(user.current_index(), 2);
    }

    #[test]
    fn ondemand_jumps_to_max_under_load() {
        let t = table();
        let mut g = GovernorState::new(GovernorKind::Ondemand, &t);
        assert_eq!(g.observe(0.1, 1.0, &t), Some(t.max_index()));
    }

    #[test]
    fn ondemand_steps_down_when_idle() {
        let t = table();
        let mut g = GovernorState::new(GovernorKind::Ondemand, &t);
        g.observe(0.1, 1.0, &t); // now at max
        let change = g.observe(0.1, 0.0, &t);
        assert_eq!(change, Some(0), "idle window should drop to fmin");
    }

    #[test]
    fn ondemand_partial_load_picks_proportional_point() {
        let t = table();
        let mut g = GovernorState::new(GovernorKind::Ondemand, &t);
        g.observe(0.1, 1.0, &t); // at 3.4 GHz
                                 // 50% utilisation at 3.4 GHz needs >= 3.4*0.5/0.95 = 1.79 GHz → 2.0.
        assert_eq!(g.observe(0.1, 0.5, &t), Some(1));
    }

    #[test]
    fn ondemand_accumulates_subsample_windows() {
        let t = table();
        let mut g = GovernorState::new(GovernorKind::Ondemand, &t);
        // Nine 10ms ticks: below the 100ms sampling period → no decision.
        for _ in 0..9 {
            assert_eq!(g.observe(0.01, 1.0, &t), None);
        }
        // The tenth completes the window.
        assert_eq!(g.observe(0.01, 1.0, &t), Some(t.max_index()));
    }

    #[test]
    fn conservative_steps_one_at_a_time() {
        let t = table();
        let mut g = GovernorState::new(GovernorKind::Conservative, &t);
        assert_eq!(g.observe(0.1, 1.0, &t), Some(1));
        assert_eq!(g.observe(0.1, 1.0, &t), Some(2));
        assert_eq!(g.observe(0.1, 0.0, &t), Some(1));
        assert_eq!(g.observe(0.1, 0.0, &t), Some(0));
        assert_eq!(g.observe(0.1, 0.0, &t), None, "already at the floor");
    }

    #[test]
    fn conservative_holds_in_the_middle_band() {
        let t = table();
        let mut g = GovernorState::new(GovernorKind::Conservative, &t);
        g.observe(0.1, 1.0, &t);
        assert_eq!(g.observe(0.1, 0.5, &t), None);
        assert_eq!(g.current_index(), 1);
    }

    #[test]
    fn switch_preserves_frequency_for_dynamic_governors() {
        let t = table();
        let mut g = GovernorState::new(GovernorKind::Ondemand, &t);
        g.observe(0.1, 1.0, &t);
        assert_eq!(g.current_index(), t.max_index());
        let idx = g.switch(GovernorKind::Conservative, &t);
        assert_eq!(
            idx,
            t.max_index(),
            "conservative takes over at current freq"
        );
        let idx = g.switch(GovernorKind::Powersave, &t);
        assert_eq!(idx, 0);
        let idx = g.switch(GovernorKind::Userspace(3), &t);
        assert_eq!(idx, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn userspace_index_validated() {
        let t = table();
        let _ = GovernorState::new(GovernorKind::Userspace(99), &t);
    }

    #[test]
    fn display_names() {
        assert_eq!(GovernorKind::Ondemand.to_string(), "ondemand");
        assert_eq!(GovernorKind::Userspace(2).to_string(), "userspace[2]");
        assert_eq!(GovernorKind::Schedutil.to_string(), "schedutil");
    }

    #[test]
    fn schedutil_tracks_utilisation_proportionally() {
        let t = table();
        let mut g = GovernorState::new(GovernorKind::Schedutil, &t);
        // Full load: 1.25 * 3.4 = 4.25 -> clamped to fmax.
        assert_eq!(g.observe(0.1, 1.0, &t), Some(t.max_index()));
        // 50% load: 1.25 * 3.4 * 0.5 = 2.125 -> 2.4 GHz (index 2).
        assert_eq!(g.observe(0.1, 0.5, &t), Some(2));
        // Idle drops to the floor.
        assert_eq!(g.observe(0.1, 0.0, &t), Some(0));
    }

    #[test]
    fn schedutil_needs_a_full_window() {
        let t = table();
        let mut g = GovernorState::new(GovernorKind::Schedutil, &t);
        assert_eq!(g.observe(0.05, 1.0, &t), None, "window incomplete");
        assert_eq!(g.observe(0.05, 1.0, &t), Some(t.max_index()));
    }
}
