//! The assembled machine: cores + governors + scheduler + power + counters.

use serde::{Deserialize, Serialize};

use crate::affinity::{AffinityMask, ThreadAssignment};
use crate::counters::{CounterModel, CounterParams, CounterSnapshot};
use crate::governor::{GovernorKind, GovernorState, GovernorTunables};
use crate::hetero::CoreClass;
use crate::opp::OppTable;
use crate::power::{EnergyMeter, PowerModel};
use crate::scheduler::{Scheduler, SchedulerConfig, ThreadDemand, ThreadId, TickResult};

/// Configuration of a [`Machine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// DVFS table shared by all cores.
    pub opp_table: OppTable,
    /// Power model of each core.
    pub power: PowerModel,
    /// Scheduler tunables (including core count).
    pub scheduler: SchedulerConfig,
    /// Governor tunables.
    pub governor_tunables: GovernorTunables,
    /// Governor every core boots with (the kernel default is ondemand).
    pub initial_governor: GovernorKind,
    /// Performance-counter coefficients.
    pub counters: CounterParams,
    /// Per-core performance/power classes; `None` means a homogeneous
    /// machine (every core a [`CoreClass::big`]). The paper's §7 names
    /// heterogeneous cores as the natural extension of the approach.
    pub core_classes: Option<Vec<CoreClass>>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            opp_table: OppTable::intel_quad(),
            power: PowerModel::default(),
            scheduler: SchedulerConfig::default(),
            governor_tunables: GovernorTunables::default(),
            initial_governor: GovernorKind::Ondemand,
            counters: CounterParams::default(),
            core_classes: None,
        }
    }
}

/// Per-tick outputs of the machine, consumed by the thermal model and the
/// workload bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineTick {
    /// Giga-cycles of useful work executed by each thread this tick.
    pub exec_giga_cycles: Vec<f64>,
    /// Effective CPU seconds granted to each thread this tick.
    pub exec_seconds: Vec<f64>,
    /// Dynamic power of each core during the tick (W).
    pub core_dynamic_w: Vec<f64>,
    /// Leakage power of each core during the tick (W).
    pub core_static_w: Vec<f64>,
    /// Busy fraction of each core.
    pub core_busy: Vec<f64>,
    /// Frequency (GHz) each core ran at during the tick.
    pub core_freq_ghz: Vec<f64>,
    /// Migrations that occurred this tick.
    pub migrations: u64,
}

/// A simulated multicore machine.
///
/// # Example
///
/// ```
/// use thermorl_platform::{AffinityMask, GovernorKind, Machine, MachineConfig, ThreadDemand};
///
/// let mut m = Machine::new(MachineConfig::default(), 1);
/// let _t = m.add_thread(AffinityMask::all(4));
/// m.set_governor_all(GovernorKind::Performance);
/// let tick = m.tick(0.01, &[ThreadDemand::running(1.0)], &[40.0; 4]);
/// assert_eq!(tick.core_freq_ghz.len(), 4);
/// assert!(tick.core_dynamic_w.iter().sum::<f64>() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    scheduler: Scheduler,
    governors: Vec<GovernorState>,
    opp_index: Vec<usize>,
    energy: EnergyMeter,
    counters: CounterModel,
    threads: Vec<ThreadId>,
    mem_intensity: Vec<f64>,
    time: f64,
}

impl Machine {
    /// Builds a machine.
    ///
    /// # Panics
    ///
    /// Panics if `core_classes` is given with the wrong length or an
    /// invalid class.
    pub fn new(config: MachineConfig, seed: u64) -> Self {
        let n = config.scheduler.num_cores;
        if let Some(classes) = &config.core_classes {
            assert_eq!(classes.len(), n, "one core class per core required");
            for c in classes {
                c.validate().expect("invalid core class");
            }
        }
        let governors: Vec<GovernorState> = (0..n)
            .map(|_| {
                GovernorState::with_tunables(
                    config.initial_governor,
                    &config.opp_table,
                    config.governor_tunables,
                )
            })
            .collect();
        let opp_index = governors.iter().map(|g| g.current_index()).collect();
        Machine {
            scheduler: Scheduler::new(config.scheduler, seed),
            governors,
            opp_index,
            energy: EnergyMeter::new(n),
            counters: CounterModel::new(config.counters),
            threads: Vec::new(),
            mem_intensity: Vec::new(),
            time: 0.0,
            config,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.config.scheduler.num_cores
    }

    /// Number of registered threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Simulated time elapsed (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Registers a thread with default (0.5) memory intensity.
    pub fn add_thread(&mut self, affinity: AffinityMask) -> ThreadId {
        let id = self.scheduler.add_thread(affinity);
        self.threads.push(id);
        self.mem_intensity.push(0.5);
        id
    }

    /// Sets a thread's memory intensity (0–1), used by the cache-miss model.
    pub fn set_memory_intensity(&mut self, id: ThreadId, intensity: f64) {
        self.mem_intensity[id.index()] = intensity.clamp(0.0, 1.0);
    }

    /// Retires a thread (application finished).
    pub fn retire_thread(&mut self, id: ThreadId) {
        self.scheduler.retire_thread(id);
    }

    /// Revives a retired thread for the next application of a scenario.
    pub fn revive_thread(&mut self, id: ThreadId) {
        self.scheduler.revive_thread(id);
    }

    /// Changes one thread's affinity (returns whether it migrated).
    pub fn set_affinity(&mut self, id: ThreadId, mask: AffinityMask) -> bool {
        let migrated = self.scheduler.set_affinity(id, mask);
        if migrated {
            self.counters.record_migrations(1);
        }
        migrated
    }

    /// Applies a whole [`ThreadAssignment`] to threads `0..masks.len()`.
    /// Extra registered threads keep their masks. Returns the number of
    /// forced migrations.
    pub fn apply_assignment(&mut self, assignment: &ThreadAssignment) -> u64 {
        let mut moved = 0;
        for (i, &mask) in assignment.masks.iter().enumerate() {
            if i >= self.threads.len() {
                break;
            }
            if self.set_affinity(self.threads[i], mask) {
                moved += 1;
            }
        }
        moved
    }

    /// Sets one core's governor; frequency takes effect immediately for
    /// static governors.
    pub fn set_governor(&mut self, core: usize, kind: GovernorKind) {
        let idx = self.governors[core].switch(kind, &self.config.opp_table);
        self.opp_index[core] = idx;
    }

    /// Sets every core's governor (the paper's actions drive all cores).
    pub fn set_governor_all(&mut self, kind: GovernorKind) {
        for core in 0..self.num_cores() {
            self.set_governor(core, kind);
        }
    }

    /// The governor currently driving a core.
    pub fn governor(&self, core: usize) -> GovernorKind {
        self.governors[core].kind()
    }

    /// A core's current OPP index.
    pub fn opp_index(&self, core: usize) -> usize {
        self.opp_index[core]
    }

    /// A core's current *effective* frequency (GHz), including its class's
    /// frequency scaling on heterogeneous machines.
    pub fn frequency(&self, core: usize) -> f64 {
        self.config.opp_table.get(self.opp_index[core]).freq_ghz * self.freq_scale(core)
    }

    fn freq_scale(&self, core: usize) -> f64 {
        self.config
            .core_classes
            .as_ref()
            .map(|c| c[core].freq_scale)
            .unwrap_or(1.0)
    }

    fn power_scale(&self, core: usize) -> f64 {
        self.config
            .core_classes
            .as_ref()
            .map(|c| c[core].power_scale)
            .unwrap_or(1.0)
    }

    /// The scheduler (read access, e.g. thread placement queries).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The energy meter.
    pub fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    /// Current perf-counter totals.
    pub fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Charges the cost of one controller sensor-sampling pass.
    pub fn charge_sample_overhead(&mut self) {
        self.counters.record_sample_overhead();
    }

    /// Charges the cost of one controller decision.
    pub fn charge_decision_overhead(&mut self) {
        self.counters.record_decision_overhead();
    }

    /// Advances the machine by `dt` seconds.
    ///
    /// `demands` must contain one entry per registered thread;
    /// `core_temps` one temperature per core (drives leakage).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match.
    pub fn tick(&mut self, dt: f64, demands: &[ThreadDemand], core_temps: &[f64]) -> MachineTick {
        assert_eq!(core_temps.len(), self.num_cores(), "temperature per core");
        let n_cores = self.num_cores();
        // Frequencies in force during this tick (pre-decision).
        let opps: Vec<_> = (0..n_cores)
            .map(|c| self.config.opp_table.get(self.opp_index[c]))
            .collect();

        let sched: TickResult = self.scheduler.tick(dt, demands);
        if sched.migrations > 0 {
            self.counters.record_migrations(sched.migrations);
        }

        // Work executed, in giga-cycles, at the core's tick frequency.
        let mut exec_giga_cycles = vec![0.0; demands.len()];
        for (i, &secs) in sched.exec_seconds.iter().enumerate() {
            if secs > 0.0 {
                let core = sched.thread_core[i];
                let gc = secs * opps[core].freq_ghz * self.freq_scale(core);
                exec_giga_cycles[i] = gc;
                let co = sched.core_nthreads[core].saturating_sub(1);
                self.counters
                    .record_execution(gc, self.mem_intensity[i], co);
            }
        }

        // Governors react to this tick's utilisation.
        for core in 0..n_cores {
            if let Some(new_idx) =
                self.governors[core].observe(dt, sched.core_busy[core], &self.config.opp_table)
            {
                self.opp_index[core] = new_idx;
            }
        }

        // Power draw during the tick (pre-decision OPPs).
        let mut core_dynamic_w = vec![0.0; n_cores];
        let mut core_static_w = vec![0.0; n_cores];
        for core in 0..n_cores {
            let scale = self.power_scale(core);
            core_dynamic_w[core] = scale
                * self.config.power.dynamic(
                    opps[core],
                    sched.core_activity[core],
                    sched.core_busy[core],
                );
            core_static_w[core] = scale
                * self
                    .config
                    .power
                    .leakage(opps[core].voltage, core_temps[core]);
        }
        self.energy.record(dt, &core_dynamic_w, &core_static_w);
        self.time += dt;

        MachineTick {
            exec_giga_cycles,
            exec_seconds: sched.exec_seconds,
            core_dynamic_w,
            core_static_w,
            core_busy: sched.core_busy,
            core_freq_ghz: (0..n_cores)
                .map(|c| opps[c].freq_ghz * self.freq_scale(c))
                .collect(),
            migrations: sched.migrations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default(), 9)
    }

    #[test]
    fn single_busy_thread_executes_at_core_frequency() {
        let mut m = machine();
        let t = m.add_thread(AffinityMask::single(0));
        m.set_governor_all(GovernorKind::Performance);
        let tick = m.tick(0.01, &[ThreadDemand::running(1.0)], &[40.0; 4]);
        assert!((tick.exec_giga_cycles[t.index()] - 0.01 * 3.4).abs() < 1e-12);
    }

    #[test]
    fn powersave_executes_slower_than_performance() {
        let run = |gov| {
            let mut m = machine();
            let t = m.add_thread(AffinityMask::single(0));
            m.set_governor_all(gov);
            let tick = m.tick(0.01, &[ThreadDemand::running(1.0)], &[40.0; 4]);
            tick.exec_giga_cycles[t.index()]
        };
        assert!(run(GovernorKind::Powersave) < run(GovernorKind::Performance));
    }

    #[test]
    fn ondemand_ramps_up_under_sustained_load() {
        let mut m = machine();
        m.add_thread(AffinityMask::single(0));
        assert_eq!(m.frequency(0), 1.6);
        for _ in 0..20 {
            m.tick(0.01, &[ThreadDemand::running(1.0)], &[40.0; 4]);
        }
        assert_eq!(m.frequency(0), 3.4, "ondemand should hit fmax");
        // And back down when the thread blocks.
        for _ in 0..30 {
            m.tick(0.01, &[ThreadDemand::blocked()], &[40.0; 4]);
        }
        assert_eq!(m.frequency(0), 1.6);
    }

    #[test]
    fn idle_cores_draw_only_leakage() {
        let mut m = machine();
        m.add_thread(AffinityMask::single(0));
        let tick = m.tick(0.01, &[ThreadDemand::blocked()], &[50.0; 4]);
        assert!(tick.core_dynamic_w.iter().all(|&p| p == 0.0));
        assert!(tick.core_static_w.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn hotter_die_leaks_more() {
        let mut m = machine();
        m.add_thread(AffinityMask::single(0));
        let cold = m.tick(0.01, &[ThreadDemand::blocked()], &[30.0; 4]);
        let hot = m.tick(0.01, &[ThreadDemand::blocked()], &[80.0; 4]);
        assert!(hot.core_static_w[0] > cold.core_static_w[0] * 2.0);
    }

    #[test]
    fn energy_meter_accumulates() {
        let mut m = machine();
        m.add_thread(AffinityMask::single(0));
        m.set_governor_all(GovernorKind::Performance);
        for _ in 0..100 {
            m.tick(0.01, &[ThreadDemand::running(1.0)], &[50.0; 4]);
        }
        assert!(m.energy().dynamic_energy() > 10.0);
        assert!(m.energy().static_energy() > 0.0);
        assert!((m.energy().elapsed() - 1.0).abs() < 1e-9);
        assert!((m.time() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn apply_assignment_moves_threads() {
        let mut m = machine();
        let ids: Vec<ThreadId> = (0..6).map(|_| m.add_thread(AffinityMask::all(4))).collect();
        let a = ThreadAssignment::packed(&[2, 2, 1, 1]);
        m.apply_assignment(&a);
        let cores: Vec<usize> = ids
            .iter()
            .map(|&id| m.scheduler().thread_core(id))
            .collect();
        assert_eq!(cores, vec![0, 0, 1, 1, 2, 3]);
    }

    #[test]
    fn counters_track_work_and_overheads() {
        let mut m = machine();
        m.add_thread(AffinityMask::single(0));
        m.tick(0.01, &[ThreadDemand::running(1.0)], &[40.0; 4]);
        let before = m.counters();
        assert!(before.instructions > 0.0);
        m.charge_sample_overhead();
        m.charge_decision_overhead();
        let after = m.counters();
        assert!(after.cache_misses > before.cache_misses);
        assert!(after.page_faults > before.page_faults);
    }

    #[test]
    fn heterogeneous_little_cores_run_slower_and_cooler() {
        use crate::hetero::big_little_quad;
        let config = MachineConfig {
            core_classes: Some(big_little_quad()),
            ..MachineConfig::default()
        };
        let mut m = Machine::new(config, 1);
        let big = m.add_thread(AffinityMask::single(0));
        let little = m.add_thread(AffinityMask::single(2));
        m.set_governor_all(GovernorKind::Performance);
        let tick = m.tick(
            0.01,
            &[ThreadDemand::running(1.0), ThreadDemand::running(1.0)],
            &[40.0; 4],
        );
        assert!(
            tick.exec_giga_cycles[big.index()] > tick.exec_giga_cycles[little.index()] * 1.5,
            "big {} vs little {}",
            tick.exec_giga_cycles[big.index()],
            tick.exec_giga_cycles[little.index()]
        );
        assert!(tick.core_dynamic_w[0] > tick.core_dynamic_w[2] * 2.0);
        assert!(tick.core_static_w[0] > tick.core_static_w[2]);
        assert!((m.frequency(0) - 3.4).abs() < 1e-9);
        assert!((m.frequency(2) - 3.4 * 0.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one core class per core")]
    fn wrong_class_count_rejected() {
        use crate::hetero::CoreClass;
        let config = MachineConfig {
            core_classes: Some(vec![CoreClass::big()]),
            ..MachineConfig::default()
        };
        let _ = Machine::new(config, 1);
    }

    #[test]
    fn memory_intensity_changes_miss_rate() {
        let run = |mem: f64| {
            let mut m = machine();
            let t = m.add_thread(AffinityMask::single(0));
            m.set_memory_intensity(t, mem);
            for _ in 0..10 {
                m.tick(0.01, &[ThreadDemand::running(1.0)], &[40.0; 4]);
            }
            m.counters().cache_misses
        };
        assert!(run(0.9) > run(0.1));
    }
}
