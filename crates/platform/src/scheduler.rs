//! An affinity-aware multicore scheduler with Linux-style periodic load
//! balancing.
//!
//! The paper's motivational example (§3) hinges on *where the OS places
//! threads*: Linux "often migrate\[s\] \[threads\] to balance load on the
//! architecture", and the proposed technique overrides that with affinity
//! masks. This scheduler reproduces the mechanism: per-core runqueues,
//! equal time-sharing within a core, periodic load balancing that respects
//! each thread's [`AffinityMask`], and a cold-cache migration penalty.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::affinity::AffinityMask;

/// Identifier of a thread registered with the [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(usize);

impl ThreadId {
    /// Dense index of the thread (order of registration).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Scheduler tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Number of cores.
    pub num_cores: usize,
    /// Period of the load balancer (s); Linux rebalances every few ticks.
    pub balance_period: f64,
    /// After a migration the thread runs at reduced efficiency for this many
    /// CPU-seconds (cold caches/TLB).
    pub migration_cold_time: f64,
    /// Execution efficiency while cold (0–1).
    pub cold_efficiency: f64,
    /// Probability per balancing pass of an extra "wakeup" migration among
    /// equally loaded cores, mimicking Linux's placement jitter.
    pub jitter_prob: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            num_cores: 4,
            balance_period: 0.1,
            migration_cold_time: 0.02,
            cold_efficiency: 0.5,
            jitter_prob: 0.05,
        }
    }
}

/// Per-tick execution demand of one thread, provided by the workload model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadDemand {
    /// Whether the thread wants CPU this tick (false = blocked on a
    /// barrier/serial section).
    pub runnable: bool,
    /// Switching activity factor of its current phase (0–1), drives
    /// dynamic power.
    pub activity: f64,
}

impl ThreadDemand {
    /// A blocked thread.
    pub fn blocked() -> Self {
        ThreadDemand {
            runnable: false,
            activity: 0.0,
        }
    }

    /// A runnable thread with the given activity factor.
    pub fn running(activity: f64) -> Self {
        ThreadDemand {
            runnable: true,
            activity,
        }
    }
}

#[derive(Debug, Clone)]
struct ThreadEntry {
    affinity: AffinityMask,
    core: usize,
    cold_remaining: f64,
    alive: bool,
}

/// What happened during one scheduler tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickResult {
    /// Effective CPU seconds granted to each thread (cold penalty applied).
    pub exec_seconds: Vec<f64>,
    /// The core each thread is currently assigned to.
    pub thread_core: Vec<usize>,
    /// Fraction of the tick each core spent busy (0 or 1 in this model).
    pub core_busy: Vec<f64>,
    /// Mean activity factor of the threads a core executed (0 when idle).
    pub core_activity: Vec<f64>,
    /// Number of runnable threads each core time-shared.
    pub core_nthreads: Vec<usize>,
    /// Migrations performed during this tick (balancing + affinity moves).
    pub migrations: u64,
}

/// The scheduler itself.
///
/// # Example
///
/// ```
/// use thermorl_platform::{AffinityMask, Scheduler, SchedulerConfig, ThreadDemand};
///
/// let mut s = Scheduler::new(SchedulerConfig::default(), 1);
/// let a = s.add_thread(AffinityMask::single(0));
/// let b = s.add_thread(AffinityMask::single(0));
/// let r = s.tick(0.01, &[ThreadDemand::running(1.0), ThreadDemand::running(1.0)]);
/// // Two threads share core 0 equally.
/// assert!((r.exec_seconds[a.index()] - 0.005).abs() < 1e-12);
/// assert!((r.exec_seconds[b.index()] - 0.005).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: SchedulerConfig,
    threads: Vec<ThreadEntry>,
    rng: StdRng,
    since_balance: f64,
    total_migrations: u64,
}

impl Scheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no cores or non-positive periods.
    pub fn new(config: SchedulerConfig, seed: u64) -> Self {
        assert!(config.num_cores > 0, "scheduler needs at least one core");
        assert!(
            config.balance_period > 0.0,
            "balance period must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.cold_efficiency),
            "cold efficiency must be a fraction"
        );
        Scheduler {
            config,
            threads: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x5EED_5C4E_D01E_0001),
            since_balance: 0.0,
            total_migrations: 0,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.config.num_cores
    }

    /// Number of registered (alive or retired) threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Registers a new thread; it is placed on the least-loaded core its
    /// affinity allows.
    ///
    /// # Panics
    ///
    /// Panics if the mask allows no core of this machine.
    pub fn add_thread(&mut self, affinity: AffinityMask) -> ThreadId {
        let core = self
            .least_loaded_allowed(affinity)
            .expect("affinity mask allows no core on this machine");
        self.threads.push(ThreadEntry {
            affinity,
            core,
            cold_remaining: 0.0,
            alive: true,
        });
        ThreadId(self.threads.len() - 1)
    }

    /// Marks a thread as finished; it stops receiving CPU but keeps its id.
    pub fn retire_thread(&mut self, id: ThreadId) {
        self.threads[id.0].alive = false;
    }

    /// Revives a retired thread (application switch re-using thread slots);
    /// it is re-placed like a fresh thread.
    pub fn revive_thread(&mut self, id: ThreadId) {
        let affinity = self.threads[id.0].affinity;
        let core = self
            .least_loaded_allowed(affinity)
            .expect("affinity mask allows no core on this machine");
        let entry = &mut self.threads[id.0];
        entry.alive = true;
        entry.core = core;
        entry.cold_remaining = 0.0;
    }

    /// Current core of a thread.
    pub fn thread_core(&self, id: ThreadId) -> usize {
        self.threads[id.0].core
    }

    /// Current affinity mask of a thread.
    pub fn affinity(&self, id: ThreadId) -> AffinityMask {
        self.threads[id.0].affinity
    }

    /// Total migrations since construction.
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Updates a thread's affinity. If its current core is no longer
    /// allowed the thread migrates immediately (the kernel's
    /// `sched_setaffinity` semantics). Returns whether a migration happened.
    pub fn set_affinity(&mut self, id: ThreadId, mask: AffinityMask) -> bool {
        self.threads[id.0].affinity = mask;
        if !mask.contains(self.threads[id.0].core) {
            let target = self
                .least_loaded_allowed(mask)
                .expect("affinity mask allows no core on this machine");
            self.migrate(id.0, target);
            true
        } else {
            false
        }
    }

    fn least_loaded_allowed(&self, mask: AffinityMask) -> Option<usize> {
        let loads = self.alive_loads();
        (0..self.config.num_cores)
            .filter(|&c| mask.contains(c))
            .min_by_key(|&c| loads[c])
    }

    fn alive_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.config.num_cores];
        for t in &self.threads {
            if t.alive {
                loads[t.core] += 1;
            }
        }
        loads
    }

    fn migrate(&mut self, idx: usize, target: usize) {
        if self.threads[idx].core != target {
            self.threads[idx].core = target;
            self.threads[idx].cold_remaining = self.config.migration_cold_time;
            self.total_migrations += 1;
        }
    }

    /// Periodic load balancing over *runnable* threads, respecting
    /// affinity. Returns migrations performed.
    fn balance(&mut self, demands: &[ThreadDemand]) -> u64 {
        let mut moved = 0u64;
        for _ in 0..self.config.num_cores * 4 {
            let mut loads = vec![0usize; self.config.num_cores];
            for (i, t) in self.threads.iter().enumerate() {
                if t.alive && demands.get(i).map(|d| d.runnable).unwrap_or(false) {
                    loads[t.core] += 1;
                }
            }
            let (max_core, &max_load) = loads
                .iter()
                .enumerate()
                .max_by_key(|&(_, l)| *l)
                .expect("at least one core");
            let (min_core, &min_load) = loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, l)| *l)
                .expect("at least one core");
            if max_load <= min_load + 1 {
                break;
            }
            // Pick a movable runnable thread from the busiest core.
            let candidate = self.threads.iter().enumerate().position(|(i, t)| {
                t.alive
                    && t.core == max_core
                    && t.affinity.contains(min_core)
                    && demands.get(i).map(|d| d.runnable).unwrap_or(false)
            });
            match candidate {
                Some(idx) => {
                    self.migrate(idx, min_core);
                    moved += 1;
                }
                None => break,
            }
        }
        // Occasional wakeup-style jitter migration between equal-load cores,
        // mimicking the non-determinism of real Linux placement (§3: Linux's
        // default allocation "often migrate[s]" threads).
        if self.config.jitter_prob > 0.0 && self.rng.gen_bool(self.config.jitter_prob) {
            let movable: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(i, t)| {
                    t.alive
                        && t.affinity.count() > 1
                        && demands.get(*i).map(|d| d.runnable).unwrap_or(false)
                })
                .map(|(i, _)| i)
                .collect();
            if !movable.is_empty() {
                let idx = movable[self.rng.gen_range(0..movable.len())];
                let mask = self.threads[idx].affinity;
                let cur = self.threads[idx].core;
                let options: Vec<usize> = (0..self.config.num_cores)
                    .filter(|&c| c != cur && mask.contains(c))
                    .collect();
                if !options.is_empty() {
                    let target = options[self.rng.gen_range(0..options.len())];
                    self.migrate(idx, target);
                    moved += 1;
                }
            }
        }
        moved
    }

    /// Runs the machine for `dt` seconds given each thread's demand.
    ///
    /// # Panics
    ///
    /// Panics if `demands.len() != self.num_threads()` or `dt <= 0`.
    pub fn tick(&mut self, dt: f64, demands: &[ThreadDemand]) -> TickResult {
        assert_eq!(
            demands.len(),
            self.threads.len(),
            "demand per thread required"
        );
        assert!(dt > 0.0, "tick duration must be positive");
        let n_cores = self.config.num_cores;

        let mut migrations = 0u64;
        self.since_balance += dt;
        if self.since_balance + 1e-12 >= self.config.balance_period {
            self.since_balance = 0.0;
            migrations = self.balance(demands);
        }

        // Group runnable threads by core.
        let mut core_threads: Vec<Vec<usize>> = vec![Vec::new(); n_cores];
        for (i, t) in self.threads.iter().enumerate() {
            if t.alive && demands[i].runnable {
                core_threads[t.core].push(i);
            }
        }

        let mut exec_seconds = vec![0.0; self.threads.len()];
        let mut core_busy = vec![0.0; n_cores];
        let mut core_activity = vec![0.0; n_cores];
        let mut core_nthreads = vec![0usize; n_cores];
        for (core, threads) in core_threads.iter().enumerate() {
            if threads.is_empty() {
                continue;
            }
            core_busy[core] = 1.0;
            core_nthreads[core] = threads.len();
            let share = dt / threads.len() as f64;
            let mut activity_sum = 0.0;
            for &i in threads {
                let entry = &mut self.threads[i];
                // Split the share into a cold and a warm portion.
                let cold = entry.cold_remaining.min(share);
                entry.cold_remaining -= cold;
                exec_seconds[i] = cold * self.config.cold_efficiency + (share - cold);
                activity_sum += demands[i].activity;
            }
            core_activity[core] = activity_sum / threads.len() as f64;
        }

        TickResult {
            exec_seconds,
            thread_core: self.threads.iter().map(|t| t.core).collect(),
            core_busy,
            core_activity,
            core_nthreads,
            migrations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(jitter: f64) -> Scheduler {
        Scheduler::new(
            SchedulerConfig {
                jitter_prob: jitter,
                ..SchedulerConfig::default()
            },
            42,
        )
    }

    fn all_running(n: usize) -> Vec<ThreadDemand> {
        vec![ThreadDemand::running(0.9); n]
    }

    #[test]
    fn new_threads_spread_across_cores() {
        let mut s = sched(0.0);
        let ids: Vec<ThreadId> = (0..4).map(|_| s.add_thread(AffinityMask::all(4))).collect();
        let cores: std::collections::HashSet<usize> =
            ids.iter().map(|&i| s.thread_core(i)).collect();
        assert_eq!(cores.len(), 4, "initial placement should spread threads");
    }

    #[test]
    fn six_threads_on_four_cores_share_fairly() {
        let mut s = sched(0.0);
        for _ in 0..6 {
            s.add_thread(AffinityMask::all(4));
        }
        let r = s.tick(0.01, &all_running(6));
        // All cores busy; loads are 2,2,1,1 in some order.
        assert!(r.core_busy.iter().all(|&b| b == 1.0));
        let mut loads = r.core_nthreads.clone();
        loads.sort_unstable();
        assert_eq!(loads, vec![1, 1, 2, 2]);
        // Threads on the 2-thread cores get half the CPU.
        let total: f64 = r.exec_seconds.iter().sum();
        assert!((total - 0.04).abs() < 1e-9, "4 cores x 10ms = 40ms of CPU");
    }

    #[test]
    fn blocked_threads_leave_cores_idle() {
        let mut s = sched(0.0);
        for _ in 0..4 {
            s.add_thread(AffinityMask::all(4));
        }
        let mut demands = all_running(4);
        demands[1] = ThreadDemand::blocked();
        demands[2] = ThreadDemand::blocked();
        demands[3] = ThreadDemand::blocked();
        let r = s.tick(0.01, &demands);
        assert_eq!(r.core_busy.iter().filter(|&&b| b == 1.0).count(), 1);
        assert_eq!(r.exec_seconds[1], 0.0);
    }

    #[test]
    fn affinity_pins_threads() {
        let mut s = sched(0.0);
        let a = s.add_thread(AffinityMask::single(3));
        assert_eq!(s.thread_core(a), 3);
        // Balancing cannot move it (run many ticks).
        for _ in 0..100 {
            s.tick(0.01, &all_running(1));
        }
        assert_eq!(s.thread_core(a), 3);
    }

    #[test]
    fn set_affinity_forces_migration() {
        let mut s = sched(0.0);
        let a = s.add_thread(AffinityMask::single(0));
        assert_eq!(s.thread_core(a), 0);
        let migrated = s.set_affinity(a, AffinityMask::single(2));
        assert!(migrated);
        assert_eq!(s.thread_core(a), 2);
        assert_eq!(s.total_migrations(), 1);
        // Mask that still contains the current core: no move.
        let migrated = s.set_affinity(a, AffinityMask::from_cores(&[1, 2]));
        assert!(!migrated);
    }

    #[test]
    fn balancer_fixes_skewed_load() {
        let mut s = sched(0.0);
        // Pin four threads to core 0, then free them.
        let ids: Vec<ThreadId> = (0..4)
            .map(|_| s.add_thread(AffinityMask::single(0)))
            .collect();
        for &id in &ids {
            s.set_affinity(id, AffinityMask::all(4));
        }
        // All still on core 0 (mask contains it). After a balancing period
        // they spread out.
        s.tick(0.1, &all_running(4));
        let loads = {
            let r = s.tick(0.01, &all_running(4));
            r.core_nthreads
        };
        assert_eq!(loads, vec![1, 1, 1, 1], "balancer should spread threads");
    }

    #[test]
    fn balancer_respects_affinity() {
        let mut s = sched(0.0);
        for _ in 0..4 {
            s.add_thread(AffinityMask::from_cores(&[0, 1]));
        }
        for _ in 0..20 {
            s.tick(0.05, &all_running(4));
        }
        let r = s.tick(0.01, &all_running(4));
        assert_eq!(r.core_nthreads[2] + r.core_nthreads[3], 0);
        assert_eq!(r.core_nthreads[0], 2);
        assert_eq!(r.core_nthreads[1], 2);
    }

    #[test]
    fn migration_applies_cold_penalty() {
        let mut s = Scheduler::new(
            SchedulerConfig {
                migration_cold_time: 0.05,
                cold_efficiency: 0.5,
                jitter_prob: 0.0,
                ..SchedulerConfig::default()
            },
            1,
        );
        let a = s.add_thread(AffinityMask::single(0));
        s.set_affinity(a, AffinityMask::single(1)); // forced migration
        let r = s.tick(0.01, &all_running(1));
        // Entire 10ms tick is cold: effective time halved.
        assert!((r.exec_seconds[a.index()] - 0.005).abs() < 1e-12);
        // After 50ms of cold time the thread warms back up.
        for _ in 0..5 {
            s.tick(0.01, &all_running(1));
        }
        let r = s.tick(0.01, &all_running(1));
        assert!((r.exec_seconds[a.index()] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn retired_threads_get_no_cpu() {
        let mut s = sched(0.0);
        let a = s.add_thread(AffinityMask::all(4));
        let b = s.add_thread(AffinityMask::all(4));
        s.retire_thread(a);
        let r = s.tick(0.01, &all_running(2));
        assert_eq!(r.exec_seconds[a.index()], 0.0);
        assert!(r.exec_seconds[b.index()] > 0.0);
    }

    #[test]
    fn revive_replaces_thread_on_least_loaded_core() {
        let mut s = sched(0.0);
        let a = s.add_thread(AffinityMask::all(4));
        s.retire_thread(a);
        s.revive_thread(a);
        let r = s.tick(0.01, &all_running(1));
        assert!(r.exec_seconds[a.index()] > 0.0);
    }

    #[test]
    fn jitter_migrations_occur_with_probability() {
        let mut s = sched(0.5);
        for _ in 0..4 {
            s.add_thread(AffinityMask::all(4));
        }
        for _ in 0..200 {
            s.tick(0.1, &all_running(4));
        }
        assert!(
            s.total_migrations() > 10,
            "jitter should cause migrations, got {}",
            s.total_migrations()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = Scheduler::new(SchedulerConfig::default(), 77);
            for _ in 0..6 {
                s.add_thread(AffinityMask::all(4));
            }
            let mut cores = Vec::new();
            for _ in 0..50 {
                let r = s.tick(0.05, &all_running(6));
                cores.push(r.thread_core);
            }
            (cores, s.total_migrations())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "demand per thread")]
    fn mismatched_demands_rejected() {
        let mut s = sched(0.0);
        s.add_thread(AffinityMask::all(4));
        let _ = s.tick(0.01, &[]);
    }

    #[test]
    #[should_panic(expected = "allows no core")]
    fn impossible_affinity_rejected() {
        let mut s = sched(0.0);
        // Mask for core 7 on a 4-core machine.
        let _ = s.add_thread(AffinityMask::single(7));
    }
}
