//! CPU power and energy models.
//!
//! Dynamic power follows the classic `P = a · C_eff · V² · f` switching
//! model; leakage follows the exponential temperature dependence the paper
//! leans on in §6.5 ("by reducing the average temperature the proposed
//! technique improves the leakage power", citing Ukhov et al. \[17\]):
//! `P_leak = V · I₀ · e^{k·T}`. The [`EnergyMeter`] integrates both
//! components per core, playing the role of `likwid-powermeter` in the
//! paper's measurement setup.

use serde::{Deserialize, Serialize};

use crate::opp::OperatingPoint;

/// Calibrated power model of one core.
///
/// Defaults are tuned so a fully active core at 3.4 GHz/1.30 V draws ≈ 18 W
/// dynamic (≈ 72 W die total, in line with desktop quad-cores of the
/// paper's era and the ≈ 30 W *average* dynamic powers of Figure 9) and a
/// hot core leaks ≈ 3 W.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Effective switched capacitance coefficient (W / (GHz · V²)).
    pub c_eff: f64,
    /// Leakage scale current `I₀` (A) at 0 °C.
    pub leak_i0: f64,
    /// Leakage temperature exponent `k` (1/°C).
    pub leak_k: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            c_eff: 3.1,
            leak_i0: 0.57,
            leak_k: 0.02,
        }
    }
}

impl PowerModel {
    /// Dynamic power (W) of a core running with the given activity factor
    /// (0–1, switching intensity of the workload) and busy fraction at the
    /// operating point.
    pub fn dynamic(&self, opp: OperatingPoint, activity: f64, busy_frac: f64) -> f64 {
        self.c_eff
            * activity.clamp(0.0, 1.0)
            * busy_frac.clamp(0.0, 1.0)
            * opp.voltage
            * opp.voltage
            * opp.freq_ghz
    }

    /// Leakage (static) power (W) at supply `voltage` and die temperature
    /// `temp_c`. Leakage flows regardless of activity.
    pub fn leakage(&self, voltage: f64, temp_c: f64) -> f64 {
        voltage * self.leak_i0 * (self.leak_k * temp_c).exp()
    }

    /// Total power of a core.
    pub fn total(&self, opp: OperatingPoint, activity: f64, busy_frac: f64, temp_c: f64) -> f64 {
        self.dynamic(opp, activity, busy_frac) + self.leakage(opp.voltage, temp_c)
    }
}

/// Integrates per-core dynamic and static energy over a run, exposing the
/// same dynamic-power / dynamic-energy numbers the paper's Figure 9 plots
/// and the leakage-energy estimate of §6.5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    dynamic_j: Vec<f64>,
    static_j: Vec<f64>,
    elapsed_s: f64,
}

impl EnergyMeter {
    /// Creates a meter for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        EnergyMeter {
            dynamic_j: vec![0.0; num_cores],
            static_j: vec![0.0; num_cores],
            elapsed_s: 0.0,
        }
    }

    /// Records `dt` seconds of the given per-core dynamic/static powers.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ from the core count.
    pub fn record(&mut self, dt: f64, dynamic_w: &[f64], static_w: &[f64]) {
        assert_eq!(dynamic_w.len(), self.dynamic_j.len());
        assert_eq!(static_w.len(), self.static_j.len());
        for (acc, &p) in self.dynamic_j.iter_mut().zip(dynamic_w) {
            *acc += p * dt;
        }
        for (acc, &p) in self.static_j.iter_mut().zip(static_w) {
            *acc += p * dt;
        }
        self.elapsed_s += dt;
    }

    /// Total dynamic energy so far (J).
    pub fn dynamic_energy(&self) -> f64 {
        self.dynamic_j.iter().sum()
    }

    /// Total static (leakage) energy so far (J).
    pub fn static_energy(&self) -> f64 {
        self.static_j.iter().sum()
    }

    /// Total energy so far (J).
    pub fn total_energy(&self) -> f64 {
        self.dynamic_energy() + self.static_energy()
    }

    /// Per-core dynamic energies (J).
    pub fn dynamic_energy_per_core(&self) -> &[f64] {
        &self.dynamic_j
    }

    /// Average total dynamic power since start (W), 0 if no time elapsed.
    pub fn average_dynamic_power(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.dynamic_energy() / self.elapsed_s
        }
    }

    /// Average total static power since start (W).
    pub fn average_static_power(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.static_energy() / self.elapsed_s
        }
    }

    /// Elapsed (recorded) time in seconds.
    pub fn elapsed(&self) -> f64 {
        self.elapsed_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opp::OppTable;

    #[test]
    fn full_tilt_core_draws_around_18w_dynamic() {
        let m = PowerModel::default();
        let top = OppTable::intel_quad().get(5);
        let p = m.dynamic(top, 1.0, 1.0);
        assert!(p > 15.0 && p < 21.0, "dynamic power {p}");
    }

    #[test]
    fn idle_core_draws_no_dynamic_power() {
        let m = PowerModel::default();
        let top = OppTable::intel_quad().get(5);
        assert_eq!(m.dynamic(top, 1.0, 0.0), 0.0);
        assert_eq!(m.dynamic(top, 0.0, 1.0), 0.0);
    }

    #[test]
    fn dynamic_power_scales_with_v_squared_f() {
        let m = PowerModel::default();
        let t = OppTable::intel_quad();
        let lo = m.dynamic(t.get(0), 0.8, 1.0);
        let hi = m.dynamic(t.get(5), 0.8, 1.0);
        let expected_ratio = (1.30f64 / 0.85).powi(2) * (3.4 / 1.6);
        assert!((hi / lo - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn leakage_grows_exponentially_with_temperature() {
        let m = PowerModel::default();
        let l30 = m.leakage(1.3, 30.0);
        let l80 = m.leakage(1.3, 80.0);
        assert!((l80 / l30 - (0.02f64 * 50.0).exp()).abs() < 1e-9);
        assert!(l80 > 2.0 && l80 < 5.0, "hot leakage {l80}");
    }

    #[test]
    fn activity_clamps() {
        let m = PowerModel::default();
        let top = OppTable::intel_quad().get(5);
        assert_eq!(m.dynamic(top, 2.0, 1.0), m.dynamic(top, 1.0, 1.0));
        assert_eq!(m.dynamic(top, -1.0, 1.0), 0.0);
    }

    #[test]
    fn meter_integrates_power() {
        let mut e = EnergyMeter::new(2);
        e.record(2.0, &[5.0, 3.0], &[1.0, 1.0]);
        e.record(1.0, &[4.0, 0.0], &[1.0, 1.0]);
        assert!((e.dynamic_energy() - 20.0).abs() < 1e-12);
        assert!((e.static_energy() - 6.0).abs() < 1e-12);
        assert!((e.total_energy() - 26.0).abs() < 1e-12);
        assert!((e.average_dynamic_power() - 20.0 / 3.0).abs() < 1e-12);
        assert!((e.average_static_power() - 2.0).abs() < 1e-12);
        assert_eq!(e.elapsed(), 3.0);
        assert_eq!(e.dynamic_energy_per_core(), &[14.0, 6.0]);
    }

    #[test]
    fn fresh_meter_reports_zero_power() {
        let e = EnergyMeter::new(4);
        assert_eq!(e.average_dynamic_power(), 0.0);
        assert_eq!(e.total_energy(), 0.0);
    }

    #[test]
    #[should_panic]
    fn meter_rejects_wrong_core_count() {
        let mut e = EnergyMeter::new(2);
        e.record(1.0, &[1.0], &[1.0, 1.0]);
    }
}
