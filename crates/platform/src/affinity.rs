//! CPU affinity masks and thread-to-core assignments.
//!
//! The paper overrides the Linux scheduler "by changing all thread's
//! affinity masks, forcing the kernel to migrate these threads to the cores
//! specified" (§3). [`AffinityMask`] mirrors the `cpu_set_t` bitmask of
//! `pthread_setaffinity_np`, and [`assignment_presets`] enumerates the
//! restricted set of assignments the Q-learning action space explores
//! (§5.1 notes the full space grows exponentially, so "only a few of the
//! alternatives are explored").

use serde::{Deserialize, Serialize};

/// A bitmask of allowed cores for one thread, like Linux's `cpu_set_t`.
///
/// # Example
///
/// ```
/// use thermorl_platform::AffinityMask;
///
/// let m = AffinityMask::from_cores(&[0, 2]);
/// assert!(m.contains(0) && !m.contains(1));
/// assert_eq!(m.count(), 2);
/// assert_eq!(format!("{m:b}"), "101");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AffinityMask(u64);

impl AffinityMask {
    /// Mask allowing all of the first `n` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds 64.
    pub fn all(n: usize) -> Self {
        assert!(n > 0 && n <= 64, "core count must be in 1..=64");
        if n == 64 {
            AffinityMask(u64::MAX)
        } else {
            AffinityMask((1u64 << n) - 1)
        }
    }

    /// Mask pinning a thread to a single core.
    ///
    /// # Panics
    ///
    /// Panics if `core >= 64`.
    pub fn single(core: usize) -> Self {
        assert!(core < 64, "core index out of range");
        AffinityMask(1u64 << core)
    }

    /// Mask from an explicit core list.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or any index is ≥ 64.
    pub fn from_cores(cores: &[usize]) -> Self {
        assert!(!cores.is_empty(), "affinity mask cannot be empty");
        let mut bits = 0u64;
        for &c in cores {
            assert!(c < 64, "core index out of range");
            bits |= 1 << c;
        }
        AffinityMask(bits)
    }

    /// The raw bits, as passed to `pthread_setaffinity_np`.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Whether `core` is allowed by this mask.
    pub fn contains(self, core: usize) -> bool {
        core < 64 && self.0 & (1 << core) != 0
    }

    /// Number of allowed cores.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The allowed core indices in ascending order.
    pub fn cores(self) -> Vec<usize> {
        (0..64).filter(|&c| self.contains(c)).collect()
    }

    /// Intersection of two masks, `None` if disjoint.
    pub fn intersect(self, other: AffinityMask) -> Option<AffinityMask> {
        let bits = self.0 & other.0;
        if bits == 0 {
            None
        } else {
            Some(AffinityMask(bits))
        }
    }
}

impl std::fmt::Display for AffinityMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.cores().into_iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl std::fmt::Binary for AffinityMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Binary::fmt(&self.0, f)
    }
}

impl std::fmt::LowerHex for AffinityMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl std::fmt::UpperHex for AffinityMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::UpperHex::fmt(&self.0, f)
    }
}

impl std::fmt::Octal for AffinityMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Octal::fmt(&self.0, f)
    }
}

impl std::ops::BitOr for AffinityMask {
    type Output = AffinityMask;

    fn bitor(self, rhs: AffinityMask) -> AffinityMask {
        AffinityMask(self.0 | rhs.0)
    }
}

/// A complete thread-to-core assignment: one mask per thread, in thread
/// order. This is the unit the learning agent's "mapping" actions select.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ThreadAssignment {
    /// Human-readable pattern name, e.g. `"pack[2,2,1,1]"`.
    pub name: String,
    /// Per-thread affinity masks.
    pub masks: Vec<AffinityMask>,
}

impl ThreadAssignment {
    /// The OS-default assignment: every thread may run anywhere; the load
    /// balancer decides (the paper's "Linux thread assignment").
    pub fn os_default(num_threads: usize, num_cores: usize) -> Self {
        ThreadAssignment {
            name: "os-default".to_string(),
            masks: vec![AffinityMask::all(num_cores); num_threads],
        }
    }

    /// Builds a packed assignment from per-core thread counts, e.g.
    /// `[2, 2, 1, 1]` puts two threads on cores 0 and 1 and one on each of
    /// cores 2 and 3 — the fixed assignment of the paper's §3 experiment.
    ///
    /// # Panics
    ///
    /// Panics if the counts do not sum to the intended thread count.
    pub fn packed(counts: &[usize]) -> Self {
        let total: usize = counts.iter().sum();
        assert!(total > 0, "assignment must place at least one thread");
        let mut masks = Vec::with_capacity(total);
        for (core, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                masks.push(AffinityMask::single(core));
            }
        }
        let name = format!(
            "pack[{}]",
            counts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        ThreadAssignment { name, masks }
    }

    /// Splits threads across core *groups*: each group of threads may float
    /// within its group of cores (a partial affinity restriction).
    ///
    /// # Panics
    ///
    /// Panics if groups are empty.
    pub fn grouped(groups: &[(Vec<usize>, usize)]) -> Self {
        let mut masks = Vec::new();
        let mut label = Vec::new();
        for (cores, nthreads) in groups {
            let mask = AffinityMask::from_cores(cores);
            for _ in 0..*nthreads {
                masks.push(mask);
            }
            label.push(format!(
                "{}x{}",
                nthreads,
                cores
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join("")
            ));
        }
        assert!(
            !masks.is_empty(),
            "assignment must place at least one thread"
        );
        ThreadAssignment {
            name: format!("group[{}]", label.join("|")),
            masks,
        }
    }

    /// Number of threads covered.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether the assignment covers no threads.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }
}

/// The restricted mapping alternatives explored by the learning agent for
/// `num_threads` threads on `num_cores` cores (§5.1). For the paper's
/// 6-threads-on-4-cores configuration this yields the OS default plus four
/// hand-picked patterns; other shapes degrade to sensible generic splits.
pub fn assignment_presets(num_threads: usize, num_cores: usize) -> Vec<ThreadAssignment> {
    let mut presets = vec![ThreadAssignment::os_default(num_threads, num_cores)];
    if num_cores >= 4 && num_threads == 6 {
        // The paper's motivating pattern: 2+2+1+1.
        presets.push(ThreadAssignment::packed(&[2, 2, 1, 1]));
        // Consolidate on fewer cores (lets the others cool).
        presets.push(ThreadAssignment::packed(&[3, 3, 0, 0]));
        presets.push(ThreadAssignment::packed(&[2, 2, 2, 0]));
        // Pair halves of the die, float within each half.
        presets.push(ThreadAssignment::grouped(&[
            (vec![0, 1], 3),
            (vec![2, 3], 3),
        ]));
    } else {
        // Generic fallbacks: even packing and a half-die split.
        let mut counts = vec![num_threads / num_cores; num_cores];
        for c in counts.iter_mut().take(num_threads % num_cores) {
            *c += 1;
        }
        presets.push(ThreadAssignment::packed(&counts));
        if num_cores >= 2 {
            let half = num_cores / 2;
            presets.push(ThreadAssignment::grouped(&[
                ((0..half).collect(), num_threads / 2 + num_threads % 2),
                ((half..num_cores).collect(), num_threads / 2),
            ]));
        }
    }
    presets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_basics() {
        let m = AffinityMask::all(4);
        assert_eq!(m.bits(), 0b1111);
        assert_eq!(m.count(), 4);
        assert_eq!(m.cores(), vec![0, 1, 2, 3]);
        assert!(!m.contains(4));
        assert_eq!(AffinityMask::single(2).bits(), 0b100);
    }

    #[test]
    fn mask_of_64_cores() {
        assert_eq!(AffinityMask::all(64).count(), 64);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_core_mask_rejected() {
        let _ = AffinityMask::all(0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_core_list_rejected() {
        let _ = AffinityMask::from_cores(&[]);
    }

    #[test]
    fn mask_intersection() {
        let a = AffinityMask::from_cores(&[0, 1]);
        let b = AffinityMask::from_cores(&[1, 2]);
        assert_eq!(a.intersect(b), Some(AffinityMask::single(1)));
        let c = AffinityMask::from_cores(&[2, 3]);
        assert_eq!(a.intersect(c), None);
    }

    #[test]
    fn mask_formatting() {
        let m = AffinityMask::from_cores(&[0, 3]);
        assert_eq!(m.to_string(), "{0,3}");
        assert_eq!(format!("{m:b}"), "1001");
        assert_eq!(format!("{m:x}"), "9");
        assert_eq!(format!("{m:o}"), "11");
    }

    #[test]
    fn mask_bitor() {
        let m = AffinityMask::single(0) | AffinityMask::single(3);
        assert_eq!(m, AffinityMask::from_cores(&[0, 3]));
    }

    #[test]
    fn packed_assignment_structure() {
        let a = ThreadAssignment::packed(&[2, 2, 1, 1]);
        assert_eq!(a.len(), 6);
        assert_eq!(a.masks[0], AffinityMask::single(0));
        assert_eq!(a.masks[1], AffinityMask::single(0));
        assert_eq!(a.masks[4], AffinityMask::single(2));
        assert_eq!(a.masks[5], AffinityMask::single(3));
        assert_eq!(a.name, "pack[2,2,1,1]");
    }

    #[test]
    fn grouped_assignment_structure() {
        let a = ThreadAssignment::grouped(&[(vec![0, 1], 3), (vec![2, 3], 3)]);
        assert_eq!(a.len(), 6);
        assert_eq!(a.masks[0], AffinityMask::from_cores(&[0, 1]));
        assert_eq!(a.masks[5], AffinityMask::from_cores(&[2, 3]));
    }

    #[test]
    fn os_default_allows_everything() {
        let a = ThreadAssignment::os_default(6, 4);
        assert!(a.masks.iter().all(|m| m.count() == 4));
    }

    #[test]
    fn paper_presets_for_six_on_four() {
        let presets = assignment_presets(6, 4);
        assert_eq!(presets.len(), 5);
        assert_eq!(presets[0].name, "os-default");
        assert!(presets.iter().all(|p| p.len() == 6));
        // Distinct patterns.
        let names: std::collections::HashSet<_> = presets.iter().map(|p| &p.name).collect();
        assert_eq!(names.len(), presets.len());
    }

    #[test]
    fn generic_presets_for_other_shapes() {
        let presets = assignment_presets(4, 2);
        assert!(presets.len() >= 2);
        assert!(presets.iter().all(|p| p.len() == 4));
        // Every preset leaves every thread at least one core.
        for p in &presets {
            for m in &p.masks {
                assert!(m.count() >= 1);
            }
        }
    }
}
