//! DVFS operating performance points (frequency/voltage pairs).

use serde::{Deserialize, Serialize};

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} GHz @ {:.2} V", self.freq_ghz, self.voltage)
    }
}

/// An ordered table of operating points (lowest to highest frequency),
/// modelling the cpufreq frequency table of the paper's Intel quad-core
/// (1.6–3.4 GHz; the paper's Table 3 exercises 2.4 GHz and 3.4 GHz
/// userspace points explicitly).
///
/// # Example
///
/// ```
/// use thermorl_platform::OppTable;
///
/// let t = OppTable::intel_quad();
/// assert_eq!(t.max_index(), t.len() - 1);
/// assert!(t.get(t.max_index()).freq_ghz > t.get(0).freq_ghz);
/// assert_eq!(t.index_of_freq(2.4), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OppTable {
    points: Vec<OperatingPoint>,
}

impl Default for OppTable {
    fn default() -> Self {
        OppTable::intel_quad()
    }
}

impl OppTable {
    /// Builds a table from points sorted by ascending frequency.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, unsorted, or contains non-positive
    /// frequencies/voltages.
    pub fn new(points: Vec<OperatingPoint>) -> Self {
        assert!(!points.is_empty(), "OPP table cannot be empty");
        for p in &points {
            assert!(
                p.freq_ghz > 0.0 && p.voltage > 0.0,
                "non-physical operating point {p:?}"
            );
        }
        assert!(
            points.windows(2).all(|w| w[0].freq_ghz < w[1].freq_ghz),
            "OPP table must be sorted by ascending frequency"
        );
        OppTable { points }
    }

    /// The 6-point table of the paper's platform: 1.6–3.4 GHz.
    pub fn intel_quad() -> Self {
        OppTable::new(vec![
            OperatingPoint {
                freq_ghz: 1.6,
                voltage: 0.85,
            },
            OperatingPoint {
                freq_ghz: 2.0,
                voltage: 0.95,
            },
            OperatingPoint {
                freq_ghz: 2.4,
                voltage: 1.05,
            },
            OperatingPoint {
                freq_ghz: 2.8,
                voltage: 1.15,
            },
            OperatingPoint {
                freq_ghz: 3.2,
                voltage: 1.25,
            },
            OperatingPoint {
                freq_ghz: 3.4,
                voltage: 1.30,
            },
        ])
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The operating point at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> OperatingPoint {
        self.points[index]
    }

    /// Index of the lowest-frequency point (powersave).
    pub fn min_index(&self) -> usize {
        0
    }

    /// Index of the highest-frequency point (performance).
    pub fn max_index(&self) -> usize {
        self.points.len() - 1
    }

    /// Index of the exact frequency `freq_ghz` if present.
    pub fn index_of_freq(&self, freq_ghz: f64) -> Option<usize> {
        self.points
            .iter()
            .position(|p| (p.freq_ghz - freq_ghz).abs() < 1e-9)
    }

    /// Lowest index whose frequency is ≥ `freq_ghz` (clamped to max).
    pub fn ceil_index(&self, freq_ghz: f64) -> usize {
        self.points
            .iter()
            .position(|p| p.freq_ghz >= freq_ghz - 1e-12)
            .unwrap_or(self.max_index())
    }

    /// Iterates over the points in ascending frequency order.
    pub fn iter(&self) -> std::slice::Iter<'_, OperatingPoint> {
        self.points.iter()
    }
}

impl<'a> IntoIterator for &'a OppTable {
    type Item = &'a OperatingPoint;
    type IntoIter = std::slice::Iter<'a, OperatingPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_table_shape() {
        let t = OppTable::intel_quad();
        assert_eq!(t.len(), 6);
        assert_eq!(t.get(0).freq_ghz, 1.6);
        assert_eq!(t.get(t.max_index()).freq_ghz, 3.4);
        assert!(t.iter().all(|p| p.voltage >= 0.85 && p.voltage <= 1.30));
    }

    #[test]
    fn voltage_increases_with_frequency() {
        let t = OppTable::intel_quad();
        for w in t.points.windows(2) {
            assert!(w[0].voltage <= w[1].voltage);
        }
    }

    #[test]
    fn index_lookups() {
        let t = OppTable::intel_quad();
        assert_eq!(t.index_of_freq(3.4), Some(5));
        assert_eq!(t.index_of_freq(2.5), None);
        assert_eq!(t.ceil_index(2.5), 3); // 2.8 GHz
        assert_eq!(t.ceil_index(0.5), 0);
        assert_eq!(t.ceil_index(9.9), t.max_index());
        assert_eq!(t.ceil_index(2.4), 2); // exact hit
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_table_rejected() {
        let _ = OppTable::new(vec![
            OperatingPoint {
                freq_ghz: 2.0,
                voltage: 1.0,
            },
            OperatingPoint {
                freq_ghz: 1.0,
                voltage: 0.9,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_table_rejected() {
        let _ = OppTable::new(vec![]);
    }

    #[test]
    fn display_format() {
        let p = OperatingPoint {
            freq_ghz: 2.4,
            voltage: 1.05,
        };
        assert_eq!(p.to_string(), "2.4 GHz @ 1.05 V");
    }
}
