//! Property-based tests of the platform substrate.

use proptest::prelude::*;

use thermorl_platform::{
    AffinityMask, GovernorKind, GovernorState, Machine, MachineConfig, OppTable, Scheduler,
    SchedulerConfig, ThreadDemand,
};

fn arb_demands(n: usize) -> impl Strategy<Value = Vec<ThreadDemand>> {
    proptest::collection::vec(
        (any::<bool>(), 0.0f64..1.0)
            .prop_map(|(runnable, activity)| ThreadDemand { runnable, activity }),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CPU time is conserved: the sum of granted thread-seconds never
    /// exceeds cores × dt, and a busy core grants exactly dt in total.
    #[test]
    fn scheduler_conserves_cpu_time(
        n_threads in 1usize..10,
        seed in 0u64..100,
        demands_seq in proptest::collection::vec(any::<u64>(), 1..30),
    ) {
        let mut s = Scheduler::new(SchedulerConfig::default(), seed);
        for _ in 0..n_threads {
            s.add_thread(AffinityMask::all(4));
        }
        for pattern in demands_seq {
            let demands: Vec<ThreadDemand> = (0..n_threads)
                .map(|i| ThreadDemand {
                    runnable: (pattern >> (i % 64)) & 1 == 1,
                    activity: 0.5,
                })
                .collect();
            let r = s.tick(0.01, &demands);
            let total: f64 = r.exec_seconds.iter().sum();
            prop_assert!(total <= 4.0 * 0.01 + 1e-12);
            // Effective time never exceeds the fair share bound per thread.
            for (i, &secs) in r.exec_seconds.iter().enumerate() {
                prop_assert!(secs <= 0.01 + 1e-12);
                if !demands[i].runnable {
                    prop_assert_eq!(secs, 0.0);
                }
            }
        }
    }

    /// Threads never run on cores outside their affinity mask.
    #[test]
    fn affinity_is_always_respected(
        seed in 0u64..100,
        masks in proptest::collection::vec(1u8..16, 1..8),
        ticks in 1usize..50,
    ) {
        let mut s = Scheduler::new(SchedulerConfig::default(), seed);
        let masks: Vec<AffinityMask> = masks
            .into_iter()
            .map(|bits| {
                let cores: Vec<usize> = (0..4).filter(|c| bits >> c & 1 == 1).collect();
                AffinityMask::from_cores(&cores)
            })
            .collect();
        let ids: Vec<_> = masks.iter().map(|&m| s.add_thread(m)).collect();
        let demands = vec![ThreadDemand::running(0.7); ids.len()];
        for _ in 0..ticks {
            let r = s.tick(0.05, &demands);
            for (i, &core) in r.thread_core.iter().enumerate() {
                prop_assert!(
                    masks[i].contains(core),
                    "thread {} on core {} outside {:?}",
                    i, core, masks[i]
                );
            }
        }
    }

    /// Governors always return a valid OPP index and respect their
    /// semantic bounds (powersave = min, performance = max).
    #[test]
    fn governors_stay_in_range(
        util_seq in proptest::collection::vec(0.0f64..1.0, 1..100),
        kind in 0usize..5,
    ) {
        let table = OppTable::intel_quad();
        let kind = match kind {
            0 => GovernorKind::Ondemand,
            1 => GovernorKind::Conservative,
            2 => GovernorKind::Performance,
            3 => GovernorKind::Powersave,
            _ => GovernorKind::Userspace(3),
        };
        let mut g = GovernorState::new(kind, &table);
        for util in util_seq {
            if let Some(idx) = g.observe(0.1, util, &table) {
                prop_assert!(idx < table.len());
            }
            prop_assert!(g.current_index() < table.len());
            match kind {
                GovernorKind::Performance => prop_assert_eq!(g.current_index(), table.max_index()),
                GovernorKind::Powersave => prop_assert_eq!(g.current_index(), 0),
                GovernorKind::Userspace(i) => prop_assert_eq!(g.current_index(), i),
                _ => {}
            }
        }
    }

    /// Machine power is bounded by physics: dynamic ≤ full-tilt draw per
    /// core, leakage positive and monotone in temperature.
    #[test]
    fn machine_power_is_bounded(
        demands in arb_demands(6),
        temp in 25.0f64..95.0,
        seed in 0u64..50,
    ) {
        let mut m = Machine::new(MachineConfig::default(), seed);
        for _ in 0..6 {
            m.add_thread(AffinityMask::all(4));
        }
        m.set_governor_all(GovernorKind::Performance);
        let temps = [temp; 4];
        let tick = m.tick(0.01, &demands, &temps);
        let p_max = m.config().power.dynamic(
            m.config().opp_table.get(m.config().opp_table.max_index()),
            1.0,
            1.0,
        );
        for c in 0..4 {
            prop_assert!(tick.core_dynamic_w[c] <= p_max + 1e-9);
            prop_assert!(tick.core_dynamic_w[c] >= 0.0);
            prop_assert!(tick.core_static_w[c] > 0.0);
        }
    }

    /// Scheduler determinism: identical seeds and demand streams produce
    /// identical placements.
    #[test]
    fn scheduler_is_deterministic(seed in 0u64..200, n in 1usize..8) {
        let run = || {
            let mut s = Scheduler::new(SchedulerConfig::default(), seed);
            for _ in 0..n {
                s.add_thread(AffinityMask::all(4));
            }
            let demands = vec![ThreadDemand::running(0.9); n];
            let mut trace = Vec::new();
            for _ in 0..30 {
                trace.push(s.tick(0.05, &demands).thread_core);
            }
            (trace, s.total_migrations())
        };
        prop_assert_eq!(run(), run());
    }
}
