//! Proves the steady-state stepping path performs zero heap allocations.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! advance (which is allowed to build caches), further stepping with any
//! [`Stepper`] — including with powers changing between ticks, as the
//! simulation engine does — must not allocate at all.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! so no concurrently running test can pollute the allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use thermorl_thermal::{DieBatch, DieModel, DieParams, Floorplan, Stepper};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_stepping_does_not_allocate() {
    for stepper in [
        Stepper::ForwardEuler,
        Stepper::Rk4,
        Stepper::Exact,
        Stepper::adaptive(),
    ] {
        let mut die = DieModel::new(
            Floorplan::quad(),
            DieParams {
                stepper,
                ..DieParams::default()
            },
        );
        for c in 0..4 {
            die.set_core_power(c, 10.0);
        }
        // Warm-up: the exact stepper may build its propagator/steady-state
        // cache here; the explicit steppers are already fully preallocated.
        die.advance(1.0);

        let n = allocs_during(|| {
            for _ in 0..100 {
                die.advance(1.0);
            }
        });
        assert_eq!(n, 0, "{stepper}: steady stepping must not allocate");

        // The engine's real usage: powers change every tick. For Exact this
        // re-solves the steady state against the cached LU factorisation,
        // which must also be allocation-free.
        let n = allocs_during(|| {
            for i in 0..100u64 {
                for c in 0..4 {
                    die.set_core_power(c, 5.0 + (i % 7) as f64 + c as f64);
                }
                die.advance(1.0);
            }
        });
        assert_eq!(
            n, 0,
            "{stepper}: stepping with changing powers must not allocate"
        );
    }

    // The batched path must uphold the same guarantee (this stays inside
    // the single #[test] so no concurrent test pollutes the counter).
    for stepper in [
        Stepper::ForwardEuler,
        Stepper::Rk4,
        Stepper::Exact,
        Stepper::adaptive(),
    ] {
        let proto = DieModel::new(
            Floorplan::quad(),
            DieParams {
                stepper,
                ..DieParams::default()
            },
        );
        let mut batch = DieBatch::new(&proto, 64);
        for die in 0..batch.width() {
            for c in 0..4 {
                batch.set_core_power(die, c, 10.0);
            }
        }
        // Warm-up builds the shared propagator and refreshes every
        // steady-state column; after that the batch path owns all its
        // scratch.
        batch.advance(1.0);

        let n = allocs_during(|| {
            for _ in 0..100 {
                batch.advance(1.0);
            }
        });
        assert_eq!(n, 0, "{stepper}: steady batch stepping must not allocate");

        // Per-die power churn between ticks: each touched column is
        // refreshed against the shared LU, still allocation-free.
        let n = allocs_during(|| {
            for i in 0..100u64 {
                for die in 0..batch.width() {
                    batch.set_core_power(die, (i % 4) as usize, 5.0 + (i % 7) as f64);
                }
                batch.advance(1.0);
            }
        });
        assert_eq!(
            n, 0,
            "{stepper}: batch stepping with changing powers must not allocate"
        );
    }

    // Large-floorplan fast path: a 16×16 grid (258 nodes) is past the
    // dense-steady limit, so the die is matrix-free and `Auto` resolves
    // to the adaptive stepper. Under power churn every advance refreshes
    // the inject buffer and re-runs the embedded RK controller — all of
    // it out of the preallocated workspace.
    for stepper in [Stepper::adaptive(), Stepper::Auto] {
        let mut die = DieModel::new(
            Floorplan::grid(16, 16),
            DieParams {
                stepper,
                ..DieParams::default()
            },
        );
        for c in 0..256 {
            die.set_core_power(c, 0.5 + (c % 5) as f64);
        }
        // Warm-up: the first adaptive advance seeds the warm-start dt.
        die.advance(1.0);

        let n = allocs_during(|| {
            for i in 0..20u64 {
                for c in 0..256 {
                    die.set_core_power(c, 0.5 + ((i + c as u64) % 5) as f64);
                }
                die.advance(1.0);
            }
        });
        assert_eq!(
            n, 0,
            "{stepper}: 16x16 adaptive stepping with churn must not allocate"
        );
    }
}
