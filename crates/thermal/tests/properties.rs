//! Property-based tests of the thermal substrate.

use proptest::prelude::*;
use thermorl_thermal::{DieBatch, DieModel, DieParams, Floorplan, HeteroMix, Stepper};

fn die_with_powers(powers: &[f64]) -> DieModel {
    let mut die = DieModel::quad_core();
    for (c, &p) in powers.iter().enumerate() {
        die.set_core_power(c, p);
    }
    die
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Steady-state temperatures always sit at or above ambient when power
    /// injection is non-negative.
    #[test]
    fn steady_state_above_ambient(p in proptest::collection::vec(0.0f64..25.0, 4)) {
        let mut die = die_with_powers(&p);
        die.settle();
        for t in die.core_temperatures() {
            prop_assert!(t >= die.params().ambient - 1e-9);
        }
    }

    /// Monotonicity: raising the power of one core cannot cool any node.
    #[test]
    fn power_monotonicity(
        p in proptest::collection::vec(0.0f64..20.0, 4),
        core in 0usize..4,
        extra in 0.1f64..10.0,
    ) {
        let mut lo = die_with_powers(&p);
        let mut hi = die_with_powers(&p);
        hi.set_core_power(core, p[core] + extra);
        lo.settle();
        hi.settle();
        for (a, b) in lo.core_temperatures().iter().zip(hi.core_temperatures()) {
            prop_assert!(b >= *a - 1e-9);
        }
    }

    /// The loaded core is the hottest core in steady state.
    #[test]
    fn loaded_core_is_hottest(core in 0usize..4, load in 5.0f64..25.0) {
        let mut p = vec![1.0; 4];
        p[core] = load;
        let mut die = die_with_powers(&p);
        die.settle();
        let temps = die.core_temperatures();
        let hottest = temps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        prop_assert_eq!(hottest, core);
    }

    /// Transient integration never overshoots the band spanned by the
    /// initial state and the steady state (the RC system is non-oscillatory).
    #[test]
    fn transient_stays_bracketed(p in proptest::collection::vec(0.0f64..25.0, 4)) {
        let mut die = die_with_powers(&p);
        let start = die.core_temperatures();
        let mut settled = die.clone();
        settled.settle();
        let end = settled.core_temperatures();
        for _ in 0..200 {
            die.advance(0.5);
            for (c, t) in die.core_temperatures().into_iter().enumerate() {
                let lo = start[c].min(end[c]) - 0.05;
                let hi = start[c].max(end[c]) + 0.05;
                prop_assert!(t >= lo && t <= hi, "core {} at {} outside [{}, {}]", c, t, lo, hi);
            }
        }
    }

    /// All three steppers agree on slow transients under random powers:
    /// small-dt RK4 is the reference, and forward Euler (discretisation
    /// error ~dt) and Exact (no discretisation error) must both land on it.
    #[test]
    fn steppers_agree(p in proptest::collection::vec(0.0f64..20.0, 4)) {
        let die_with = |stepper: Stepper, sim_dt: f64| {
            let mut die = DieModel::new(
                Floorplan::quad(),
                DieParams { stepper, sim_dt, ..DieParams::default() },
            );
            for (c, &w) in p.iter().enumerate() {
                die.set_core_power(c, w);
            }
            die
        };
        let mut rk = die_with(Stepper::Rk4, 0.05);
        let mut euler = die_with(Stepper::ForwardEuler, 0.01);
        let mut exact = die_with(Stepper::Exact, 0.01);
        let mut adaptive = die_with(Stepper::adaptive(), 0.05);
        rk.advance(20.0);
        euler.advance(20.0);
        exact.advance(20.0);
        adaptive.advance(20.0);
        for (a, b) in euler.core_temperatures().iter().zip(rk.core_temperatures()) {
            prop_assert!((a - b).abs() < 0.15, "euler {} vs rk4 {}", a, b);
        }
        // Exact carries no discretisation error, so it tracks the fine RK4
        // reference an order of magnitude tighter than Euler does.
        for (a, b) in exact.core_temperatures().iter().zip(rk.core_temperatures()) {
            prop_assert!((a - b).abs() < 1e-2, "exact {} vs rk4 {}", a, b);
        }
        // The adaptive controller holds per-step error at its tolerances,
        // so it must sit on the exact propagator far inside the explicit
        // steppers' discretisation error.
        for (a, b) in adaptive.core_temperatures().iter().zip(exact.core_temperatures()) {
            prop_assert!((a - b).abs() < 1e-3, "adaptive {} vs exact {}", a, b);
        }
    }

    /// The adaptive stepper agrees with the exact propagator on random
    /// floorplan shapes, random power vectors, heterogeneous big.LITTLE
    /// mixes, and a mid-run ambient swing — the error controller holds
    /// across every die geometry, not just the calibrated quad.
    #[test]
    fn adaptive_agrees_with_exact_on_random_floorplans(
        w in 1usize..5,
        h in 1usize..5,
        big_pick in 0usize..32,
        powers in proptest::collection::vec(0.0f64..15.0, 16),
        ambient_shift in -10.0f64..15.0,
    ) {
        let cores = w * h;
        // big_pick folds to 0..=cores; 0 big cores means a homogeneous die.
        let big = big_pick % (cores + 1);
        let hetero = if big == 0 { None } else { Some(HeteroMix::big_little(big)) };
        let build = |stepper: Stepper| {
            let mut die = DieModel::new(
                Floorplan::grid(w, h),
                DieParams { stepper, hetero, ..DieParams::default() },
            );
            for (c, &w) in powers.iter().enumerate().take(cores) {
                die.set_core_power(c, w);
            }
            die
        };
        let mut exact = build(Stepper::Exact);
        let mut adaptive = build(Stepper::adaptive());
        exact.advance(5.0);
        adaptive.advance(5.0);
        // Ambient swing mid-run: both steppers must track the new target.
        exact.set_ambient(25.0 + ambient_shift);
        adaptive.set_ambient(25.0 + ambient_shift);
        exact.advance(5.0);
        adaptive.advance(5.0);
        for (a, b) in adaptive.core_temperatures().iter().zip(exact.core_temperatures()) {
            prop_assert!(
                (a - b).abs() < 1e-3,
                "{}x{} big={} adaptive {} vs exact {}", w, h, big, a, b
            );
        }
    }

    /// A die advanced inside a [`DieBatch`] is bit-identical to the same
    /// die advanced alone, for every stepper, under per-die power and
    /// ambient schedules whose varying epoch lengths force propagator
    /// rebuilds (Exact re-derives `E` per distinct dt) and dirty-column
    /// steady refreshes. This is the contract that keeps serve snapshots
    /// and campaign checkpoints byte-identical when dies route through
    /// the batched path.
    #[test]
    fn batch_agrees_with_scalar(
        width in 1usize..6,
        stepper_idx in 0usize..4,
        schedule in proptest::collection::vec(
            (1u8..30, proptest::collection::vec(0.0f64..20.0, 24)),
            1..5,
        ),
    ) {
        let stepper = [
            Stepper::ForwardEuler,
            Stepper::Rk4,
            Stepper::Exact,
            Stepper::adaptive(),
        ][stepper_idx];
        let proto = DieModel::new(
            Floorplan::quad(),
            DieParams { stepper, ..DieParams::default() },
        );
        let mut batch = DieBatch::new(&proto, width);
        let mut scalars: Vec<DieModel> = (0..width).map(|_| proto.clone()).collect();
        let mut out = vec![0.0; batch.nodes()];
        for (ticks, powers) in &schedule {
            // 0.07 s ticks leave a partial final sub-step for the explicit
            // steppers; distinct durations are distinct dts for Exact.
            let duration = f64::from(*ticks) * 0.07;
            for (d, scalar) in scalars.iter_mut().enumerate() {
                for c in 0..4 {
                    let w = powers[(d * 4 + c) % powers.len()];
                    batch.set_core_power(d, c, w);
                    scalar.set_core_power(c, w);
                }
                let ambient = 25.0 + powers[d % powers.len()] * 0.2;
                batch.set_ambient(d, ambient);
                scalar.set_ambient(ambient);
            }
            batch.advance(duration);
            for s in &mut scalars {
                s.advance(duration);
            }
            for (d, scalar) in scalars.iter().enumerate() {
                batch.store_die(d, &mut out);
                for (i, (a, b)) in out.iter().zip(scalar.network().temperatures()).enumerate() {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "{} die {} node {}: {} vs {}", stepper, d, i, a, b
                    );
                }
            }
        }
    }

    /// Total steady-state heat flow to ambient equals injected power
    /// (energy conservation): T_sink - T_amb = P_total * R_sink.
    #[test]
    fn steady_state_energy_balance(p in proptest::collection::vec(0.0f64..25.0, 4)) {
        let mut die = die_with_powers(&p);
        die.settle();
        let total: f64 = p.iter().sum();
        let expected_sink = die.params().ambient + total * die.params().sink_to_ambient;
        prop_assert!((die.sink_temperature() - expected_sink).abs() < 1e-6);
    }
}
