//! General lumped RC thermal networks.
//!
//! A network is a set of thermal nodes, each with a heat capacitance, linked
//! by thermal conductances to each other and (optionally) to the ambient.
//! Temperatures evolve as
//!
//! ```text
//! C_i dT_i/dt = P_i - g_amb_i (T_i - T_amb) - Σ_j g_ij (T_i - T_j)
//! ```
//!
//! which is exactly the HotSpot-style compact model the DAC'14 paper's
//! related work builds on. The network supports explicit integration (see
//! [`crate::stepper`]) and an analytic steady state through LU decomposition.

use crate::linalg::{Matrix, SolveError};
use crate::stepper::Stepper;

/// Identifier of a node inside an [`RcNetwork`].
///
/// Node ids are dense indices handed out by [`RcNetworkBuilder::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Builder for [`RcNetwork`].
///
/// # Example
///
/// ```
/// use thermorl_thermal::{RcNetworkBuilder, Stepper};
///
/// let mut b = RcNetworkBuilder::new(25.0);
/// let a = b.add_node("core", 10.0);
/// let s = b.add_node("sink", 100.0);
/// b.connect(a, s, 2.0); // 2 W/K between core and sink
/// b.connect_ambient(s, 1.0); // sink leaks to ambient
/// let mut net = b.build().unwrap();
/// net.set_power(a, 10.0);
/// net.advance(1200.0, 0.05, Stepper::ForwardEuler);
/// // Steady state: sink = 25 + 10/1 = 35, core = 35 + 10/2 = 40.
/// assert!((net.temperature(a) - 40.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RcNetworkBuilder {
    names: Vec<String>,
    capacitance: Vec<f64>,
    edges: Vec<(usize, usize, f64)>,
    ambient_conductance: Vec<f64>,
    ambient: f64,
}

impl RcNetworkBuilder {
    /// Creates a builder with the given ambient temperature (°C).
    pub fn new(ambient_c: f64) -> Self {
        RcNetworkBuilder {
            ambient: ambient_c,
            ..Default::default()
        }
    }

    /// Adds a node with heat capacitance `capacitance_j_per_k` (J/K) and
    /// returns its id. Initial temperature is ambient.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is not strictly positive.
    pub fn add_node(&mut self, name: impl Into<String>, capacitance_j_per_k: f64) -> NodeId {
        assert!(
            capacitance_j_per_k > 0.0,
            "node capacitance must be positive"
        );
        self.names.push(name.into());
        self.capacitance.push(capacitance_j_per_k);
        self.ambient_conductance.push(0.0);
        NodeId(self.names.len() - 1)
    }

    /// Connects two nodes with a thermal conductance (W/K). Conductances
    /// accumulate if called repeatedly for the same pair.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or the conductance is negative.
    pub fn connect(&mut self, a: NodeId, b: NodeId, conductance_w_per_k: f64) {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(conductance_w_per_k >= 0.0, "conductance must be >= 0");
        self.edges.push((a.0, b.0, conductance_w_per_k));
    }

    /// Connects a node to the ambient with the given conductance (W/K).
    pub fn connect_ambient(&mut self, n: NodeId, conductance_w_per_k: f64) {
        assert!(conductance_w_per_k >= 0.0, "conductance must be >= 0");
        self.ambient_conductance[n.0] += conductance_w_per_k;
    }

    /// Finalises the network.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NoNodes`] for an empty network and
    /// [`BuildError::Floating`] when some node has no path (direct or
    /// indirect) to the ambient — such a node would heat without bound.
    pub fn build(self) -> Result<RcNetwork, BuildError> {
        let n = self.names.len();
        if n == 0 {
            return Err(BuildError::NoNodes);
        }
        let mut g = Matrix::zeros(n);
        for &(a, b, c) in &self.edges {
            g[(a, b)] += c;
            g[(b, a)] += c;
        }
        // Reachability from ambient-connected nodes through positive edges.
        let mut reached = vec![false; n];
        let mut stack: Vec<usize> = (0..n)
            .filter(|&i| self.ambient_conductance[i] > 0.0)
            .collect();
        for &s in &stack {
            reached[s] = true;
        }
        while let Some(i) = stack.pop() {
            for j in 0..n {
                if !reached[j] && g[(i, j)] > 0.0 {
                    reached[j] = true;
                    stack.push(j);
                }
            }
        }
        if let Some(idx) = reached.iter().position(|&r| !r) {
            return Err(BuildError::Floating {
                node: self.names[idx].clone(),
            });
        }
        let temperature = vec![self.ambient; n];
        Ok(RcNetwork {
            names: self.names,
            capacitance: self.capacitance,
            conductance: g,
            ambient_conductance: self.ambient_conductance,
            ambient: self.ambient,
            temperature,
            power: vec![0.0; n],
        })
    }
}

/// Error building an [`RcNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The builder contained no nodes.
    NoNodes,
    /// A node has no conductive path to ambient.
    Floating {
        /// Name of the offending node.
        node: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoNodes => write!(f, "network has no nodes"),
            BuildError::Floating { node } => {
                write!(f, "node `{node}` has no path to ambient")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A lumped RC thermal network with per-node power injection.
#[derive(Debug, Clone)]
pub struct RcNetwork {
    names: Vec<String>,
    capacitance: Vec<f64>,
    conductance: Matrix,
    ambient_conductance: Vec<f64>,
    ambient: f64,
    temperature: Vec<f64>,
    power: Vec<f64>,
}

impl RcNetwork {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the network has no nodes (never true for built networks).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a node.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.0]
    }

    /// Ambient temperature (°C).
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Sets the ambient temperature (°C); takes effect on the next step.
    pub fn set_ambient(&mut self, ambient_c: f64) {
        self.ambient = ambient_c;
    }

    /// Current temperature of a node (°C).
    pub fn temperature(&self, n: NodeId) -> f64 {
        self.temperature[n.0]
    }

    /// All node temperatures, indexed by [`NodeId::index`].
    pub fn temperatures(&self) -> &[f64] {
        &self.temperature
    }

    /// Overrides all node temperatures (e.g. to start from a steady state).
    ///
    /// # Panics
    ///
    /// Panics if `temps.len() != self.len()`.
    pub fn set_temperatures(&mut self, temps: &[f64]) {
        assert_eq!(temps.len(), self.temperature.len());
        self.temperature.copy_from_slice(temps);
    }

    /// Sets the power (W) injected into a node.
    pub fn set_power(&mut self, n: NodeId, watts: f64) {
        self.power[n.0] = watts;
    }

    /// Power currently injected into a node (W).
    pub fn power(&self, n: NodeId) -> f64 {
        self.power[n.0]
    }

    /// Computes the time derivative of all node temperatures (K/s) into
    /// `out` given the temperatures in `t`.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the math
    fn derivative(&self, t: &[f64], out: &mut [f64]) {
        let n = self.len();
        for i in 0..n {
            let mut q = self.power[i] - self.ambient_conductance[i] * (t[i] - self.ambient);
            for j in 0..n {
                let g = self.conductance[(i, j)];
                if g != 0.0 {
                    q -= g * (t[i] - t[j]);
                }
            }
            out[i] = q / self.capacitance[i];
        }
    }

    /// Advances the network by a single explicit step of `dt` seconds.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the math
    pub fn step(&mut self, dt: f64, stepper: Stepper) {
        let n = self.len();
        match stepper {
            Stepper::ForwardEuler => {
                let mut d = vec![0.0; n];
                self.derivative(&self.temperature.clone(), &mut d);
                for i in 0..n {
                    self.temperature[i] += dt * d[i];
                }
            }
            Stepper::Rk4 => {
                let t0 = self.temperature.clone();
                let mut k1 = vec![0.0; n];
                let mut k2 = vec![0.0; n];
                let mut k3 = vec![0.0; n];
                let mut k4 = vec![0.0; n];
                let mut tmp = vec![0.0; n];
                self.derivative(&t0, &mut k1);
                for i in 0..n {
                    tmp[i] = t0[i] + 0.5 * dt * k1[i];
                }
                self.derivative(&tmp, &mut k2);
                for i in 0..n {
                    tmp[i] = t0[i] + 0.5 * dt * k2[i];
                }
                self.derivative(&tmp, &mut k3);
                for i in 0..n {
                    tmp[i] = t0[i] + dt * k3[i];
                }
                self.derivative(&tmp, &mut k4);
                for i in 0..n {
                    self.temperature[i] =
                        t0[i] + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
                }
            }
        }
    }

    /// Advances by `duration` seconds using fixed sub-steps of `dt`.
    ///
    /// The final partial step (if `duration` is not a multiple of `dt`) is
    /// taken with the remaining time, so the advance is exact in total time.
    pub fn advance(&mut self, duration: f64, dt: f64, stepper: Stepper) {
        let mut remaining = duration;
        while remaining > 1e-12 {
            let h = remaining.min(dt);
            self.step(h, stepper);
            remaining -= h;
        }
    }

    /// Largest forward-Euler step that keeps integration stable, from the
    /// Gershgorin bound on the system's eigenvalues: `dt < 2 / max_i (Σg/C)`.
    pub fn max_stable_dt(&self) -> f64 {
        let n = self.len();
        let mut worst: f64 = 0.0;
        for i in 0..n {
            let mut g_total = self.ambient_conductance[i];
            for j in 0..n {
                g_total += self.conductance[(i, j)];
            }
            worst = worst.max(g_total / self.capacitance[i]);
        }
        if worst == 0.0 {
            f64::INFINITY
        } else {
            2.0 / worst
        }
    }

    /// Analytic steady-state temperatures for the current power vector,
    /// obtained by solving `G T = P + g_amb T_amb` with LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns an error if the conductance matrix is singular, which cannot
    /// happen for networks built through [`RcNetworkBuilder`] (every node is
    /// grounded to ambient).
    pub fn steady_state(&self) -> Result<Vec<f64>, SolveError> {
        let n = self.len();
        let mut a = Matrix::zeros(n);
        let mut b = vec![0.0; n];
        for i in 0..n {
            let mut diag = self.ambient_conductance[i];
            for j in 0..n {
                let g = self.conductance[(i, j)];
                if g != 0.0 {
                    diag += g;
                    a[(i, j)] -= g;
                }
            }
            a[(i, i)] += diag;
            b[i] = self.power[i] + self.ambient_conductance[i] * self.ambient;
        }
        a.solve(&b)
    }

    /// Jumps the network straight to its steady state for the current powers.
    ///
    /// # Panics
    ///
    /// Panics if the steady-state solve fails (impossible for built
    /// networks; see [`RcNetwork::steady_state`]).
    pub fn settle(&mut self) {
        let t = self
            .steady_state()
            .expect("built networks always have a grounded, non-singular G");
        self.temperature = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> RcNetwork {
        let mut b = RcNetworkBuilder::new(20.0);
        let core = b.add_node("core", 5.0);
        let sink = b.add_node("sink", 50.0);
        b.connect(core, sink, 2.0);
        b.connect_ambient(sink, 1.0);
        let mut net = b.build().unwrap();
        net.set_power(core, 10.0);
        net
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(
            RcNetworkBuilder::new(20.0).build().unwrap_err(),
            BuildError::NoNodes
        );
    }

    #[test]
    fn build_rejects_floating_node() {
        let mut b = RcNetworkBuilder::new(20.0);
        let a = b.add_node("a", 1.0);
        b.add_node("orphan", 1.0);
        b.connect_ambient(a, 1.0);
        match b.build() {
            Err(BuildError::Floating { node }) => assert_eq!(node, "orphan"),
            other => panic!("expected floating error, got {other:?}"),
        }
    }

    #[test]
    fn steady_state_matches_hand_computation() {
        let net = two_node();
        let t = net.steady_state().unwrap();
        // Sink: 20 + 10/1 = 30; core: 30 + 10/2 = 35.
        assert!((t[1] - 30.0).abs() < 1e-9, "{t:?}");
        assert!((t[0] - 35.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn euler_converges_to_steady_state() {
        let mut net = two_node();
        net.advance(500.0, 0.05, Stepper::ForwardEuler);
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 0.05);
        }
    }

    #[test]
    fn rk4_converges_to_steady_state() {
        let mut net = two_node();
        net.advance(500.0, 0.25, Stepper::Rk4);
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 0.05);
        }
    }

    #[test]
    fn settle_jumps_to_steady_state() {
        let mut net = two_node();
        net.settle();
        assert!((net.temperature(NodeId(0)) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn max_stable_dt_guards_euler() {
        let net = two_node();
        let dt = net.max_stable_dt();
        // Core node: (2.0)/5.0 = 0.4; sink: 3/50 = 0.06 → dt = 2/0.4 = 5 s.
        assert!((dt - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cooling_is_monotone_without_power() {
        let mut net = two_node();
        net.set_power(NodeId(0), 0.0);
        net.set_temperatures(&[80.0, 60.0]);
        let mut prev = net.temperature(NodeId(0));
        for _ in 0..100 {
            net.step(0.05, Stepper::ForwardEuler);
            let now = net.temperature(NodeId(0));
            assert!(now <= prev + 1e-12);
            prev = now;
        }
        assert!(prev > net.ambient() - 1e-9);
    }

    #[test]
    fn more_power_means_hotter_everywhere() {
        let mut lo = two_node();
        let mut hi = two_node();
        hi.set_power(NodeId(0), 20.0);
        lo.advance(50.0, 0.05, Stepper::ForwardEuler);
        hi.advance(50.0, 0.05, Stepper::ForwardEuler);
        for i in 0..lo.len() {
            assert!(hi.temperatures()[i] > lo.temperatures()[i]);
        }
    }

    #[test]
    fn ambient_change_shifts_steady_state() {
        let mut net = two_node();
        net.set_ambient(30.0);
        let t = net.steady_state().unwrap();
        assert!((t[0] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn advance_handles_partial_final_step() {
        let mut a = two_node();
        let mut b = two_node();
        a.advance(1.0, 0.3, Stepper::Rk4); // 0.3+0.3+0.3+0.1
        b.advance(0.5, 0.3, Stepper::Rk4);
        b.advance(0.5, 0.3, Stepper::Rk4);
        // Not bit-identical (different step splits) but physically close.
        assert!((a.temperature(NodeId(0)) - b.temperature(NodeId(0))).abs() < 1e-3);
    }
}
