//! General lumped RC thermal networks.
//!
//! A network is a set of thermal nodes, each with a heat capacitance, linked
//! by thermal conductances to each other and (optionally) to the ambient.
//! Temperatures evolve as
//!
//! ```text
//! C_i dT_i/dt = P_i - g_amb_i (T_i - T_amb) - Σ_j g_ij (T_i - T_j)
//! ```
//!
//! which is exactly the HotSpot-style compact model the DAC'14 paper's
//! related work builds on.
//!
//! The network is the innermost loop of every simulation, so it is built
//! for throughput:
//!
//! * the conductance graph is stored in CSR form (neighbour lists), so a
//!   derivative sweep is O(nnz) instead of O(n²);
//! * every integrator works out of preallocated scratch buffers owned by
//!   the network — steady-state stepping performs **zero** heap
//!   allocations (see `tests/zero_alloc.rs`);
//! * [`Stepper::Exact`] advances a whole step with a single matrix-vector
//!   product against the cached propagator `E = exp(-C⁻¹G·dt)`, with the
//!   steady state obtained from an LU factorisation computed once at build
//!   time (only the right-hand side changes when powers or ambient move);
//! * [`Stepper::Adaptive`] integrates with an embedded Dormand–Prince
//!   5(4) pair over the sparse CSR graph only — O(nnz) per stage, no
//!   dense `expm`/LU — so floorplans with thousands of nodes still step;
//!   above [`DENSE_STEADY_LIMIT`] nodes the steady-state solve switches
//!   from dense LU to Jacobi-preconditioned conjugate gradient;
//! * [`Stepper::Auto`] picks between the two per advance from node count
//!   and power-churn rate.

use crate::linalg::{Lu, Matrix, SolveError};
use crate::rk::{self, DormandPrince54, MAX_RK_STAGES};
use crate::sparse::{cg_solve, CgScratch, OdeView, CG_REL_TOL};
use crate::stepper::Stepper;

/// Node count above which [`RcNetworkBuilder::build`] stops materialising
/// and LU-factorising the dense steady-state operator and solves steady
/// states matrix-free (Jacobi-preconditioned CG) instead. At 256 nodes the
/// dense factorisation is ~0.4 MiB and a few ms; past it the O(n³) build
/// and O(n²) storage stop paying for themselves.
pub const DENSE_STEADY_LIMIT: usize = 256;

/// Identifier of a node inside an [`RcNetwork`].
///
/// Node ids are dense indices handed out by [`RcNetworkBuilder::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Builder for [`RcNetwork`].
///
/// # Example
///
/// ```
/// use thermorl_thermal::{RcNetworkBuilder, Stepper};
///
/// let mut b = RcNetworkBuilder::new(25.0);
/// let a = b.add_node("core", 10.0);
/// let s = b.add_node("sink", 100.0);
/// b.connect(a, s, 2.0); // 2 W/K between core and sink
/// b.connect_ambient(s, 1.0); // sink leaks to ambient
/// let mut net = b.build().unwrap();
/// net.set_power(a, 10.0);
/// net.advance(1200.0, 0.05, Stepper::ForwardEuler);
/// // Steady state: sink = 25 + 10/1 = 35, core = 35 + 10/2 = 40.
/// assert!((net.temperature(a) - 40.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RcNetworkBuilder {
    names: Vec<String>,
    capacitance: Vec<f64>,
    edges: Vec<(usize, usize, f64)>,
    ambient_conductance: Vec<f64>,
    ambient: f64,
    dense_steady_limit: Option<usize>,
}

impl RcNetworkBuilder {
    /// Creates a builder with the given ambient temperature (°C).
    pub fn new(ambient_c: f64) -> Self {
        RcNetworkBuilder {
            ambient: ambient_c,
            ..Default::default()
        }
    }

    /// Adds a node with heat capacitance `capacitance_j_per_k` (J/K) and
    /// returns its id. Initial temperature is ambient.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is not strictly positive.
    pub fn add_node(&mut self, name: impl Into<String>, capacitance_j_per_k: f64) -> NodeId {
        assert!(
            capacitance_j_per_k > 0.0,
            "node capacitance must be positive"
        );
        self.names.push(name.into());
        self.capacitance.push(capacitance_j_per_k);
        self.ambient_conductance.push(0.0);
        NodeId(self.names.len() - 1)
    }

    /// Connects two nodes with a thermal conductance (W/K). Conductances
    /// accumulate if called repeatedly for the same pair.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or the conductance is negative.
    pub fn connect(&mut self, a: NodeId, b: NodeId, conductance_w_per_k: f64) {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(conductance_w_per_k >= 0.0, "conductance must be >= 0");
        self.edges.push((a.0, b.0, conductance_w_per_k));
    }

    /// Connects a node to the ambient with the given conductance (W/K).
    pub fn connect_ambient(&mut self, n: NodeId, conductance_w_per_k: f64) {
        assert!(conductance_w_per_k >= 0.0, "conductance must be >= 0");
        self.ambient_conductance[n.0] += conductance_w_per_k;
    }

    /// Overrides the node count at which the steady-state solver switches
    /// from dense LU to matrix-free CG (default [`DENSE_STEADY_LIMIT`]).
    /// A test/bench hook: `0` forces CG on any network, `usize::MAX`
    /// forces the dense factorisation.
    pub fn set_dense_steady_limit(&mut self, limit: usize) {
        self.dense_steady_limit = Some(limit);
    }

    /// Finalises the network: accumulates duplicate edges, compiles the
    /// conductance graph to its CSR neighbour representation, factorises
    /// the steady-state operator once, and preallocates all stepper
    /// scratch space.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NoNodes`] for an empty network and
    /// [`BuildError::Floating`] when some node has no path (direct or
    /// indirect) to the ambient — such a node would heat without bound.
    pub fn build(self) -> Result<RcNetwork, BuildError> {
        let n = self.names.len();
        if n == 0 {
            return Err(BuildError::NoNodes);
        }
        // Directed edge list, stable-sorted by (row, col): duplicates of a
        // pair stay in insertion order, so the per-pair accumulation below
        // is bit-identical to the dense-matrix accumulation it replaces —
        // without ever materialising an O(n²) matrix.
        let mut directed: Vec<(usize, usize, f64)> = Vec::with_capacity(self.edges.len() * 2);
        for &(a, b, c) in &self.edges {
            directed.push((a, b, c));
            directed.push((b, a, c));
        }
        directed.sort_by_key(|&(row, col, _)| (row, col));
        // CSR neighbour lists (zero-conductance edges are dropped) and the
        // total conductance seen by each node (diagonal of the Laplacian).
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut edge_g = Vec::new();
        let mut diag_g = vec![0.0; n];
        row_ptr.push(0);
        let mut cursor = 0;
        for (i, diag) in diag_g.iter_mut().enumerate() {
            let mut total = self.ambient_conductance[i];
            while cursor < directed.len() && directed[cursor].0 == i {
                let j = directed[cursor].1;
                let mut g = 0.0;
                while cursor < directed.len() && directed[cursor].0 == i && directed[cursor].1 == j
                {
                    g += directed[cursor].2;
                    cursor += 1;
                }
                if g > 0.0 {
                    col_idx.push(j);
                    edge_g.push(g);
                    total += g;
                }
            }
            *diag = total;
            row_ptr.push(col_idx.len());
        }
        // Reachability from ambient-connected nodes through positive edges
        // (zero-sum pairs were dropped above, so the CSR adjacency is
        // exactly the positive-conductance graph).
        let mut reached = vec![false; n];
        let mut stack: Vec<usize> = (0..n)
            .filter(|&i| self.ambient_conductance[i] > 0.0)
            .collect();
        for &s in &stack {
            reached[s] = true;
        }
        while let Some(i) = stack.pop() {
            for &j in &col_idx[row_ptr[i]..row_ptr[i + 1]] {
                if !reached[j] {
                    reached[j] = true;
                    stack.push(j);
                }
            }
        }
        if let Some(idx) = reached.iter().position(|&r| !r) {
            return Err(BuildError::Floating {
                node: self.names[idx].clone(),
            });
        }
        // Steady-state operator A = diag(g_amb + Σg) - G. The floating-node
        // check above guarantees A is an irreducibly diagonally dominant
        // M-matrix, hence SPD and non-singular. Small networks densify and
        // LU-factorise it once; large ones stay matrix-free and solve
        // steady states by preconditioned CG on demand.
        let limit = self.dense_steady_limit.unwrap_or(DENSE_STEADY_LIMIT);
        let steady = if n <= limit {
            let mut a = Matrix::zeros(n);
            for i in 0..n {
                a[(i, i)] = diag_g[i];
                for k in row_ptr[i]..row_ptr[i + 1] {
                    a[(i, col_idx[k])] = -edge_g[k];
                }
            }
            let lu = a
                .lu()
                .expect("grounded RC networks have a non-singular steady-state operator");
            SteadySolver::Dense(lu)
        } else {
            SteadySolver::MatrixFree
        };
        let inv_capacitance: Vec<f64> = self.capacitance.iter().map(|&c| 1.0 / c).collect();
        let temperature = vec![self.ambient; n];
        Ok(RcNetwork {
            names: self.names,
            capacitance: self.capacitance,
            inv_capacitance,
            row_ptr,
            col_idx,
            edge_g,
            diag_g,
            steady,
            ambient_conductance: self.ambient_conductance,
            ambient: self.ambient,
            temperature,
            power: vec![0.0; n],
            scratch: Workspace::with_len(n),
            exact: None,
            steady_dirty: true,
            inject_dirty: true,
            adaptive_dt: None,
            propagator_builds: 0,
            steady_refreshes: 0,
            adaptive_steps: 0,
            step_rejections: 0,
            auto_advances: 0,
            auto_dirty_advances: 0,
        })
    }
}

/// Error building an [`RcNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The builder contained no nodes.
    NoNodes,
    /// A node has no conductive path to ambient.
    Floating {
        /// Name of the offending node.
        node: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoNodes => write!(f, "network has no nodes"),
            BuildError::Floating { node } => {
                write!(f, "node `{node}` has no path to ambient")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Preallocated stepper scratch, so steady-state stepping never touches
/// the heap. `k1..k7` are RK stage slopes (`k1` doubles as the Euler
/// slope and the exact step's output; the adaptive DP54 pair uses all
/// seven), `tmp` holds intermediate states, `t0` the step's initial
/// temperatures (the adaptive kernel reuses it as its trial-solution
/// buffer), `inject` the cached per-node `P_i + g_amb_i·T_amb` refreshed
/// only when power or ambient change, and `cg` the conjugate-gradient
/// scratch for matrix-free steady solves.
#[derive(Debug, Clone, Default)]
struct Workspace {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    k5: Vec<f64>,
    k6: Vec<f64>,
    k7: Vec<f64>,
    tmp: Vec<f64>,
    t0: Vec<f64>,
    inject: Vec<f64>,
    cg: CgScratch,
}

impl Workspace {
    fn with_len(n: usize) -> Self {
        Workspace {
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            k4: vec![0.0; n],
            k5: vec![0.0; n],
            k6: vec![0.0; n],
            k7: vec![0.0; n],
            tmp: vec![0.0; n],
            t0: vec![0.0; n],
            inject: vec![0.0; n],
            cg: CgScratch::with_len(n),
        }
    }
}

/// How steady states `A·T_ss = b` are solved: dense LU factorised once at
/// build for small networks, Jacobi-preconditioned CG over the CSR graph
/// for large ones (crossover at the builder's dense-steady limit).
#[derive(Debug, Clone)]
pub(crate) enum SteadySolver {
    Dense(Lu),
    MatrixFree,
}

/// The cached exact propagator for one step size, plus the steady-state
/// vector it pivots around. Rebuilt only when `dt` changes; the steady
/// state is refreshed (one LU solve against the build-time factorisation)
/// only when powers or ambient have changed since the last exact step.
#[derive(Debug, Clone)]
struct ExactCache {
    dt: f64,
    /// `E = exp(-C⁻¹A·dt)` where `A` is the full conductance Laplacian.
    propagator: Matrix,
    /// Steady-state temperatures for the current `(power, ambient)`.
    t_ss: Vec<f64>,
    /// Right-hand side scratch for the steady-state solve.
    rhs: Vec<f64>,
}

/// A lumped RC thermal network with per-node power injection.
#[derive(Debug, Clone)]
pub struct RcNetwork {
    names: Vec<String>,
    /// Per-node heat capacitance (J/K); shared with [`crate::NetworkBatch`].
    pub(crate) capacitance: Vec<f64>,
    /// Precomputed `1/C_i`: derivative sweeps multiply instead of divide.
    pub(crate) inv_capacitance: Vec<f64>,
    /// CSR row pointers into `col_idx`/`edge_g` (length `n + 1`).
    pub(crate) row_ptr: Vec<usize>,
    /// CSR neighbour indices.
    pub(crate) col_idx: Vec<usize>,
    /// CSR edge conductances (W/K), parallel to `col_idx`.
    pub(crate) edge_g: Vec<f64>,
    /// Per-node total conductance `g_amb_i + Σ_j g_ij` (the Laplacian
    /// diagonal; also drives the Gershgorin stability bound).
    pub(crate) diag_g: Vec<f64>,
    /// Steady-state solver: dense LU (small) or matrix-free CG (large).
    pub(crate) steady: SteadySolver,
    pub(crate) ambient_conductance: Vec<f64>,
    ambient: f64,
    temperature: Vec<f64>,
    power: Vec<f64>,
    scratch: Workspace,
    exact: Option<ExactCache>,
    /// Whether `(power, ambient)` changed since the last steady-state
    /// refresh of the exact cache.
    steady_dirty: bool,
    /// Whether `(power, ambient)` changed since the last refresh of the
    /// workspace `inject` buffer used by the explicit/adaptive steppers.
    inject_dirty: bool,
    /// Warm-start step size carried between adaptive advances. Not part
    /// of the thermal snapshot state: a restored network restarts the
    /// controller from the `dt` hint (one extra controller transient,
    /// same accuracy).
    adaptive_dt: Option<f64>,
    propagator_builds: u64,
    steady_refreshes: u64,
    adaptive_steps: u64,
    step_rejections: u64,
    /// Advances seen under `Stepper::Auto`, and how many of those had
    /// power/ambient churn — the crossover heuristic's inputs.
    auto_advances: u64,
    auto_dirty_advances: u64,
}

impl RcNetwork {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the network has no nodes (never true for built networks).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of stored directed edges in the CSR conductance graph
    /// (each undirected conductance is stored twice).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Name of a node.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.0]
    }

    /// Ambient temperature (°C).
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Sets the ambient temperature (°C); takes effect on the next step.
    pub fn set_ambient(&mut self, ambient_c: f64) {
        if self.ambient != ambient_c {
            self.ambient = ambient_c;
            self.steady_dirty = true;
            self.inject_dirty = true;
        }
    }

    /// Current temperature of a node (°C).
    pub fn temperature(&self, n: NodeId) -> f64 {
        self.temperature[n.0]
    }

    /// All node temperatures, indexed by [`NodeId::index`].
    pub fn temperatures(&self) -> &[f64] {
        &self.temperature
    }

    /// Overrides all node temperatures (e.g. to start from a steady state).
    ///
    /// # Panics
    ///
    /// Panics if `temps.len() != self.len()`.
    pub fn set_temperatures(&mut self, temps: &[f64]) {
        assert_eq!(temps.len(), self.temperature.len());
        self.temperature.copy_from_slice(temps);
    }

    /// Sets the power (W) injected into a node.
    pub fn set_power(&mut self, n: NodeId, watts: f64) {
        if self.power[n.0] != watts {
            self.power[n.0] = watts;
            self.steady_dirty = true;
            self.inject_dirty = true;
        }
    }

    /// Power currently injected into a node (W).
    pub fn power(&self, n: NodeId) -> f64 {
        self.power[n.0]
    }

    /// All node powers (W), indexed by [`NodeId::index`] — the batch
    /// loaders copy whole power vectors between dies with this.
    pub fn powers(&self) -> &[f64] {
        &self.power
    }

    /// How many times the exact propagator has been (re)built — once per
    /// distinct step size seen by [`Stepper::Exact`]. Diagnostic for cache
    /// behaviour (tests, benches); mirrored onto the telemetry registry as
    /// the `thermal.propagator_builds` counter when recording is enabled.
    pub fn propagator_builds(&self) -> u64 {
        self.propagator_builds
    }

    /// How many times the exact stepper refreshed its cached steady state
    /// (one LU solve, triggered by power/ambient changes). Diagnostic for
    /// cache behaviour (tests, benches); mirrored onto the telemetry
    /// registry as the `thermal.steady_refreshes` counter.
    pub fn steady_refreshes(&self) -> u64 {
        self.steady_refreshes
    }

    /// Accepted steps taken by [`Stepper::Adaptive`] advances so far.
    /// Mirrored onto the telemetry registry as `thermal.adaptive_steps`.
    pub fn adaptive_steps(&self) -> u64 {
        self.adaptive_steps
    }

    /// Step attempts the adaptive error controller rejected and retried.
    /// Mirrored onto the telemetry registry as `thermal.step_rejections`.
    pub fn step_rejections(&self) -> u64 {
        self.step_rejections
    }

    /// Step size the adaptive controller would take next, if any adaptive
    /// advance has run — the warm start for the next advance (also the
    /// `thermal.dt_current` gauge).
    pub fn adaptive_dt(&self) -> Option<f64> {
        self.adaptive_dt
    }

    /// Borrowed matrix-free view of the CSR graph for the sparse kernels.
    pub(crate) fn ode_view(&self) -> OdeView<'_> {
        OdeView {
            row_ptr: &self.row_ptr,
            col_idx: &self.col_idx,
            edge_g: &self.edge_g,
            diag_g: &self.diag_g,
            inv_cap: &self.inv_capacitance,
        }
    }

    /// Refreshes the cached per-node injection `P_i + g_amb_i·T_amb` if
    /// power or ambient changed; every explicit/adaptive stage then reads
    /// it instead of recomputing the sum per sub-step.
    fn refresh_inject(&mut self, inject: &mut [f64]) {
        if !self.inject_dirty {
            return;
        }
        for ((inj, &p), &g) in inject
            .iter_mut()
            .zip(&self.power)
            .zip(&self.ambient_conductance)
        {
            *inj = p + g * self.ambient;
        }
        self.inject_dirty = false;
    }

    /// Solves the steady-state system `A·x = rhs` into `out` through
    /// whichever solver the build chose. The single dispatch point shared
    /// by the scalar and batched exact steppers.
    pub(crate) fn solve_steady_into(&self, rhs: &[f64], out: &mut [f64], cg: &mut CgScratch) {
        match &self.steady {
            SteadySolver::Dense(lu) => lu.solve_into(rhs, out),
            SteadySolver::MatrixFree => {
                let iters = cg_solve(&self.ode_view(), rhs, out, cg, CG_REL_TOL);
                thermorl_telemetry::counter!("thermal.cg_iterations", iters);
            }
        }
    }

    /// Builds the exact propagator `E = exp(-C⁻¹A·dt)` for a step of `dt`
    /// seconds. This is the single construction path shared by the scalar
    /// exact stepper and [`crate::NetworkBatch`], so a batched die and an
    /// independently stepped die apply bit-identical propagators.
    pub(crate) fn propagator_matrix(&self, dt: f64) -> Matrix {
        let n = self.len();
        // M = -dt·C⁻¹A from the CSR graph: row i is scaled by dt/C_i.
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            let scale = dt / self.capacitance[i];
            m[(i, i)] = -self.diag_g[i] * scale;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.edge_g[k] * scale;
            }
        }
        m.expm()
    }

    /// Rebuilds the exact propagator if the cached one was built for a
    /// different step size (or does not exist yet).
    fn ensure_exact_cache(&mut self, dt: f64) {
        if self.exact.as_ref().is_some_and(|c| c.dt == dt) {
            return;
        }
        let n = self.len();
        self.exact = Some(ExactCache {
            dt,
            propagator: self.propagator_matrix(dt),
            t_ss: vec![0.0; n],
            rhs: vec![0.0; n],
        });
        self.propagator_builds += 1;
        thermorl_telemetry::counter!("thermal.propagator_builds");
        thermorl_telemetry::event!("thermal.rebuild", "propagator dt={dt}");
        self.steady_dirty = true;
    }

    /// Advances the network by a single step of `dt` seconds.
    ///
    /// [`Stepper::Exact`] is exact for any `dt` under piecewise-constant
    /// power; the explicit steppers discretise and need `dt` within their
    /// stability/accuracy bounds. [`Stepper::Adaptive`] treats `dt` as the
    /// total span and subdivides it under error control (so a "step" of
    /// any size is safe); [`Stepper::Auto`] resolves to one of the others
    /// first. No step allocates once the exact propagator for `dt` is
    /// cached.
    pub fn step(&mut self, dt: f64, stepper: Stepper) {
        match stepper {
            Stepper::Adaptive { rel_tol, abs_tol } => {
                return self.advance_adaptive(dt, dt, rel_tol, abs_tol);
            }
            Stepper::Auto => {
                let resolved = self.auto_choice(self.auto_advances, self.auto_dirty_advances);
                return self.step(dt, resolved);
            }
            _ => {}
        }
        // The workspace is moved out so its buffers can be borrowed
        // mutably alongside `&self` (a Vec move, not an allocation).
        let mut ws = std::mem::take(&mut self.scratch);
        match stepper {
            Stepper::ForwardEuler => {
                self.refresh_inject(&mut ws.inject);
                let ode = self.ode_view();
                ode.derivative(&ws.inject, &self.temperature, &mut ws.k1);
                for (t, d) in self.temperature.iter_mut().zip(&ws.k1) {
                    *t += dt * d;
                }
            }
            Stepper::Rk4 => {
                self.refresh_inject(&mut ws.inject);
                ws.t0.copy_from_slice(&self.temperature);
                let ode = self.ode_view();
                ode.derivative(&ws.inject, &ws.t0, &mut ws.k1);
                for i in 0..ws.t0.len() {
                    ws.tmp[i] = ws.t0[i] + 0.5 * dt * ws.k1[i];
                }
                ode.derivative(&ws.inject, &ws.tmp, &mut ws.k2);
                for i in 0..ws.t0.len() {
                    ws.tmp[i] = ws.t0[i] + 0.5 * dt * ws.k2[i];
                }
                ode.derivative(&ws.inject, &ws.tmp, &mut ws.k3);
                for i in 0..ws.t0.len() {
                    ws.tmp[i] = ws.t0[i] + dt * ws.k3[i];
                }
                ode.derivative(&ws.inject, &ws.tmp, &mut ws.k4);
                for i in 0..ws.t0.len() {
                    self.temperature[i] = ws.t0[i]
                        + dt / 6.0 * (ws.k1[i] + 2.0 * ws.k2[i] + 2.0 * ws.k3[i] + ws.k4[i]);
                }
            }
            Stepper::Exact => {
                self.ensure_exact_cache(dt);
                let mut cache = self.exact.take().expect("cache ensured above");
                if self.steady_dirty {
                    for i in 0..cache.rhs.len() {
                        cache.rhs[i] = self.power[i] + self.ambient_conductance[i] * self.ambient;
                    }
                    self.solve_steady_into(&cache.rhs, &mut cache.t_ss, &mut ws.cg);
                    self.steady_refreshes += 1;
                    thermorl_telemetry::counter!("thermal.steady_refreshes");
                    self.steady_dirty = false;
                }
                // T(t+dt) = T_ss + E·(T(t) - T_ss)
                for i in 0..cache.t_ss.len() {
                    ws.tmp[i] = self.temperature[i] - cache.t_ss[i];
                }
                cache.propagator.mul_vec_into(&ws.tmp, &mut ws.k1);
                for i in 0..cache.t_ss.len() {
                    self.temperature[i] = cache.t_ss[i] + ws.k1[i];
                }
                self.exact = Some(cache);
            }
            Stepper::Adaptive { .. } | Stepper::Auto => unreachable!("handled above"),
        }
        self.scratch = ws;
    }

    /// Advances `duration` seconds under the embedded Dormand–Prince 5(4)
    /// pair: sparse CSR stages only, per-node error control at the given
    /// tolerances, PI step-size adaptation warm-started from the previous
    /// adaptive advance (or `dt_hint` on the first one).
    fn advance_adaptive(&mut self, duration: f64, dt_hint: f64, rel_tol: f64, abs_tol: f64) {
        if duration <= 0.0 {
            return;
        }
        let mut ws = std::mem::take(&mut self.scratch);
        self.refresh_inject(&mut ws.inject);
        let dt0 = self.adaptive_dt.unwrap_or(dt_hint);
        let stats = {
            let ode = OdeView {
                row_ptr: &self.row_ptr,
                col_idx: &self.col_idx,
                edge_g: &self.edge_g,
                diag_g: &self.diag_g,
                inv_cap: &self.inv_capacitance,
            };
            let mut stages: [&mut [f64]; MAX_RK_STAGES] = [
                &mut ws.k1, &mut ws.k2, &mut ws.k3, &mut ws.k4, &mut ws.k5, &mut ws.k6, &mut ws.k7,
            ];
            rk::integrate::<DormandPrince54>(
                &ode,
                &ws.inject,
                &mut self.temperature,
                duration,
                dt0,
                rel_tol,
                abs_tol,
                &mut stages,
                &mut ws.tmp,
                &mut ws.t0,
            )
        };
        self.adaptive_dt = Some(stats.dt_next);
        self.adaptive_steps += stats.accepted;
        self.step_rejections += stats.rejected;
        thermorl_telemetry::counter!("thermal.adaptive_steps", stats.accepted);
        thermorl_telemetry::counter!("thermal.step_rejections", stats.rejected);
        thermorl_telemetry::gauge!("thermal.dt_current", stats.dt_next);
        self.scratch = ws;
    }

    /// Node count at or below which [`Stepper::Auto`] always picks the
    /// exact propagator: dense build is trivial there and each step is a
    /// single O(n²) GEMV that adaptive stepping cannot beat.
    const AUTO_EXACT_MAX_NODES: usize = 64;
    /// Auto advances observed before the churn statistics are trusted.
    const AUTO_WARMUP_ADVANCES: u64 = 4;

    /// What [`Stepper::Auto`] resolves to right now, given this network's
    /// size, steady-solver kind, and observed power-churn history.
    pub fn resolve_auto(&self) -> Stepper {
        self.auto_choice(self.auto_advances, self.auto_dirty_advances)
    }

    /// Crossover rule shared with [`crate::NetworkBatch`] (which tracks
    /// its own fleet-level churn counters).
    pub(crate) fn auto_choice(&self, advances: u64, dirty_advances: u64) -> Stepper {
        // Matrix-free networks must never densify an expm.
        if matches!(self.steady, SteadySolver::MatrixFree) {
            return Stepper::adaptive();
        }
        if self.len() <= Self::AUTO_EXACT_MAX_NODES {
            return Stepper::Exact;
        }
        // Mid-size dense networks: the propagator pays off only when
        // powers hold still (every churned advance costs an extra dense
        // steady solve, while the adaptive path restarts cheaply). Wait
        // out a few advances of history, then pick Exact only for
        // low-churn (< 50% of advances) workloads.
        if advances >= Self::AUTO_WARMUP_ADVANCES && dirty_advances * 2 <= advances {
            Stepper::Exact
        } else {
            Stepper::adaptive()
        }
    }

    /// Records one advance of churn history and resolves `Auto`.
    fn resolve_auto_advance(&mut self) -> Stepper {
        self.auto_advances += 1;
        // Power/ambient changed since the last advance exactly when both
        // refresh flags are still set (each advance clears one of them).
        if self.steady_dirty && self.inject_dirty {
            self.auto_dirty_advances += 1;
        }
        self.auto_choice(self.auto_advances, self.auto_dirty_advances)
    }

    /// Advances by `duration` seconds.
    ///
    /// [`Stepper::Exact`] covers the whole duration in a single step (it
    /// is exact at any step size under piecewise-constant power).
    /// [`Stepper::Adaptive`] also consumes the duration in one call,
    /// subdividing it under error control with `dt` as the cold-start
    /// hint; [`Stepper::Auto`] resolves per advance and feeds its churn
    /// statistics. The explicit steppers take `floor(duration/dt)` full
    /// sub-steps (the
    /// count is computed up front, so `advance(a + b)` performs the same
    /// step sequence as `advance(a); advance(b)` whenever `a` and `b` are
    /// multiples of `dt`), then one final partial step with the remainder
    /// so the advance is exact in total time.
    pub fn advance(&mut self, duration: f64, dt: f64, stepper: Stepper) {
        if duration <= 0.0 {
            return;
        }
        let stepper = if stepper == Stepper::Auto {
            self.resolve_auto_advance()
        } else {
            stepper
        };
        if stepper == Stepper::Exact {
            self.step(duration, stepper);
            return;
        }
        if let Stepper::Adaptive { rel_tol, abs_tol } = stepper {
            // The controller subdivides the duration itself; dt is only
            // the cold-start hint.
            self.advance_adaptive(duration, dt, rel_tol, abs_tol);
            return;
        }
        let ratio = duration / dt;
        // Snap to an integer step count when duration is a multiple of dt
        // up to floating-point rounding, so no spurious 1e-16 s step runs.
        let steps = if (ratio - ratio.round()).abs() < 1e-9 {
            ratio.round() as u64
        } else {
            ratio.floor() as u64
        };
        for _ in 0..steps {
            self.step(dt, stepper);
        }
        let remainder = duration - steps as f64 * dt;
        if remainder > 1e-12 {
            self.step(remainder, stepper);
        }
    }

    /// Largest forward-Euler step that keeps integration stable, from the
    /// Gershgorin bound on the system's eigenvalues: `dt < 2 / max_i (Σg/C)`.
    pub fn max_stable_dt(&self) -> f64 {
        let worst = self
            .diag_g
            .iter()
            .zip(&self.capacitance)
            .map(|(g, c)| g / c)
            .fold(0.0, f64::max);
        if worst == 0.0 {
            f64::INFINITY
        } else {
            2.0 / worst
        }
    }

    /// Analytic steady-state temperatures for the current power vector,
    /// solving `A T = P + g_amb T_amb` — against the LU factorisation
    /// computed at build time on small networks, or by matrix-free
    /// preconditioned CG on large ones.
    ///
    /// # Errors
    ///
    /// Kept for API stability; networks built through [`RcNetworkBuilder`]
    /// always factorise successfully (every node is grounded to ambient),
    /// so this never fails.
    pub fn steady_state(&self) -> Result<Vec<f64>, SolveError> {
        let b: Vec<f64> = self
            .power
            .iter()
            .zip(&self.ambient_conductance)
            .map(|(p, g)| p + g * self.ambient)
            .collect();
        match &self.steady {
            SteadySolver::Dense(lu) => Ok(lu.solve(&b)),
            SteadySolver::MatrixFree => {
                let mut x = vec![0.0; self.len()];
                let mut cg = CgScratch::with_len(self.len());
                cg_solve(&self.ode_view(), &b, &mut x, &mut cg, CG_REL_TOL);
                Ok(x)
            }
        }
    }

    /// Jumps the network straight to its steady state for the current powers.
    ///
    /// # Panics
    ///
    /// Panics if the steady-state solve fails (impossible for built
    /// networks; see [`RcNetwork::steady_state`]).
    pub fn settle(&mut self) {
        let t = self
            .steady_state()
            .expect("built networks always have a grounded, non-singular G");
        self.temperature = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> RcNetwork {
        let mut b = RcNetworkBuilder::new(20.0);
        let core = b.add_node("core", 5.0);
        let sink = b.add_node("sink", 50.0);
        b.connect(core, sink, 2.0);
        b.connect_ambient(sink, 1.0);
        let mut net = b.build().unwrap();
        net.set_power(core, 10.0);
        net
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(
            RcNetworkBuilder::new(20.0).build().unwrap_err(),
            BuildError::NoNodes
        );
    }

    #[test]
    fn build_rejects_floating_node() {
        let mut b = RcNetworkBuilder::new(20.0);
        let a = b.add_node("a", 1.0);
        b.add_node("orphan", 1.0);
        b.connect_ambient(a, 1.0);
        match b.build() {
            Err(BuildError::Floating { node }) => assert_eq!(node, "orphan"),
            other => panic!("expected floating error, got {other:?}"),
        }
    }

    #[test]
    fn csr_stores_each_edge_twice_and_drops_zeros() {
        let mut b = RcNetworkBuilder::new(20.0);
        let x = b.add_node("x", 1.0);
        let y = b.add_node("y", 1.0);
        let z = b.add_node("z", 1.0);
        b.connect(x, y, 1.5);
        b.connect(x, y, 0.5); // accumulates onto the same pair
        b.connect(y, z, 0.0); // dropped
        b.connect(x, z, 3.0);
        b.connect_ambient(x, 1.0);
        let net = b.build().unwrap();
        assert_eq!(net.nnz(), 4, "two positive undirected edges, stored twice");
    }

    #[test]
    fn steady_state_matches_hand_computation() {
        let net = two_node();
        let t = net.steady_state().unwrap();
        // Sink: 20 + 10/1 = 30; core: 30 + 10/2 = 35.
        assert!((t[1] - 30.0).abs() < 1e-9, "{t:?}");
        assert!((t[0] - 35.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn euler_converges_to_steady_state() {
        let mut net = two_node();
        net.advance(500.0, 0.05, Stepper::ForwardEuler);
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 0.05);
        }
    }

    #[test]
    fn rk4_converges_to_steady_state() {
        let mut net = two_node();
        net.advance(500.0, 0.25, Stepper::Rk4);
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 0.05);
        }
    }

    #[test]
    fn exact_converges_to_steady_state() {
        // Slowest time constant is ~55 s; after 4000 s the transient has
        // decayed below f64 resolution, so Exact must sit on the LU answer.
        let mut net = two_node();
        net.advance(4000.0, 0.05, Stepper::Exact);
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_matches_fine_rk4_on_transient() {
        let mut exact = two_node();
        let mut rk = two_node();
        exact.advance(3.0, 3.0, Stepper::Exact); // one propagator application
        rk.advance(3.0, 1e-3, Stepper::Rk4); // reference at tiny dt
        for (a, b) in exact.temperatures().iter().zip(rk.temperatures()) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn exact_step_is_a_semigroup() {
        // E(a+b)·x == E(b)·E(a)·x: one 2 s step equals two 1 s steps.
        let mut once = two_node();
        let mut twice = two_node();
        once.advance(2.0, 2.0, Stepper::Exact);
        twice.step(1.0, Stepper::Exact);
        twice.step(1.0, Stepper::Exact);
        for (a, b) in once.temperatures().iter().zip(twice.temperatures()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn exact_propagator_cache_invalidates_on_dt_and_ambient() {
        let mut net = two_node();
        net.step(0.1, Stepper::Exact);
        assert_eq!(net.propagator_builds(), 1);
        assert_eq!(net.steady_refreshes(), 1);

        // Same dt, unchanged powers: both caches hit.
        net.step(0.1, Stepper::Exact);
        assert_eq!(net.propagator_builds(), 1);
        assert_eq!(net.steady_refreshes(), 1);

        // New dt: propagator rebuilt.
        net.step(0.2, Stepper::Exact);
        assert_eq!(net.propagator_builds(), 2);

        // Ambient change: steady state refreshed, propagator untouched.
        let refreshes = net.steady_refreshes();
        net.set_ambient(30.0);
        net.step(0.2, Stepper::Exact);
        assert_eq!(net.propagator_builds(), 2);
        assert_eq!(net.steady_refreshes(), refreshes + 1);

        // Power change: steady state refreshed again.
        net.set_power(NodeId(0), 5.0);
        net.step(0.2, Stepper::Exact);
        assert_eq!(net.steady_refreshes(), refreshes + 2);

        // Setting the same power/ambient again is a no-op.
        net.set_power(NodeId(0), 5.0);
        net.set_ambient(30.0);
        net.step(0.2, Stepper::Exact);
        assert_eq!(net.steady_refreshes(), refreshes + 2);
        assert_eq!(net.propagator_builds(), 2);
    }

    #[test]
    fn exact_cache_results_match_cold_network() {
        // A network whose cache was built under different (dt, ambient,
        // power) must agree with a fresh one after invalidation.
        let mut warm = two_node();
        warm.step(0.5, Stepper::Exact);
        warm.set_ambient(28.0);
        warm.set_power(NodeId(0), 4.0);
        let mut cold = two_node();
        cold.set_ambient(28.0);
        cold.set_power(NodeId(0), 4.0);
        cold.set_temperatures(warm.temperatures());
        warm.step(1.0, Stepper::Exact);
        cold.step(1.0, Stepper::Exact);
        for (a, b) in warm.temperatures().iter().zip(cold.temperatures()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn settle_jumps_to_steady_state() {
        let mut net = two_node();
        net.settle();
        assert!((net.temperature(NodeId(0)) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn max_stable_dt_guards_euler() {
        let net = two_node();
        let dt = net.max_stable_dt();
        // Core node: (2.0)/5.0 = 0.4; sink: 3/50 = 0.06 → dt = 2/0.4 = 5 s.
        assert!((dt - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cooling_is_monotone_without_power() {
        let mut net = two_node();
        net.set_power(NodeId(0), 0.0);
        net.set_temperatures(&[80.0, 60.0]);
        let mut prev = net.temperature(NodeId(0));
        for _ in 0..100 {
            net.step(0.05, Stepper::ForwardEuler);
            let now = net.temperature(NodeId(0));
            assert!(now <= prev + 1e-12);
            prev = now;
        }
        assert!(prev > net.ambient() - 1e-9);
    }

    #[test]
    fn more_power_means_hotter_everywhere() {
        let mut lo = two_node();
        let mut hi = two_node();
        hi.set_power(NodeId(0), 20.0);
        lo.advance(50.0, 0.05, Stepper::ForwardEuler);
        hi.advance(50.0, 0.05, Stepper::ForwardEuler);
        for i in 0..lo.len() {
            assert!(hi.temperatures()[i] > lo.temperatures()[i]);
        }
    }

    #[test]
    fn ambient_change_shifts_steady_state() {
        let mut net = two_node();
        net.set_ambient(30.0);
        let t = net.steady_state().unwrap();
        assert!((t[0] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn advance_split_at_dt_multiples_is_bit_identical() {
        // With the sub-step count computed up front, advance(1.0) and
        // advance(0.5); advance(0.5) run the exact same step sequence when
        // the split points are multiples of dt.
        for stepper in [Stepper::ForwardEuler, Stepper::Rk4] {
            let mut a = two_node();
            let mut b = two_node();
            a.advance(1.0, 0.25, stepper); // 4 full steps
            b.advance(0.5, 0.25, stepper); // 2 + 2 full steps
            b.advance(0.5, 0.25, stepper);
            assert_eq!(
                a.temperatures(),
                b.temperatures(),
                "split advance must be bit-identical for {stepper}"
            );
        }
    }

    #[test]
    fn advance_handles_partial_final_step() {
        let mut a = two_node();
        let mut b = two_node();
        a.advance(1.0, 0.3, Stepper::Rk4); // 0.3+0.3+0.3+0.1
        b.advance(0.5, 0.3, Stepper::Rk4); // 0.3+0.2, then 0.3+0.2
        b.advance(0.5, 0.3, Stepper::Rk4);
        // Not bit-identical (different step splits) but physically close.
        assert!((a.temperature(NodeId(0)) - b.temperature(NodeId(0))).abs() < 1e-3);
    }

    #[test]
    fn advance_near_multiple_does_not_take_spurious_step() {
        // 0.3 * 3 accumulates to 0.8999999999999999; advance by that
        // amount with dt = 0.3 must take exactly 3 steps, not 3 + a
        // ~1e-16 s tail step.
        let mut a = two_node();
        let mut b = two_node();
        a.advance(0.3 + 0.3 + 0.3, 0.3, Stepper::Rk4);
        for _ in 0..3 {
            b.step(0.3, Stepper::Rk4);
        }
        assert_eq!(a.temperatures(), b.temperatures());
    }

    #[test]
    fn adaptive_converges_to_steady_state() {
        let mut net = two_node();
        net.advance(500.0, 0.05, Stepper::adaptive());
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
        assert!(net.adaptive_steps() >= 1);
        assert!(net.adaptive_dt().unwrap() > 0.0);
    }

    #[test]
    fn adaptive_matches_fine_rk4_on_transient() {
        let mut adaptive = two_node();
        let mut rk = two_node();
        adaptive.advance(3.0, 0.05, Stepper::adaptive());
        rk.advance(3.0, 1e-3, Stepper::Rk4);
        for (a, b) in adaptive.temperatures().iter().zip(rk.temperatures()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn adaptive_oversized_hint_rejects_then_recovers() {
        let mut net = two_node();
        // A 500 s first trial step on a ~55 s time constant must reject.
        net.advance(500.0, 500.0, Stepper::adaptive());
        assert!(net.step_rejections() >= 1, "oversized step must reject");
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn adaptive_warm_start_matches_split_tolerance() {
        // Two half-advances continue from the warm dt; the result agrees
        // with one full advance within tolerance (not bitwise — the step
        // sequence differs at the split).
        let mut whole = two_node();
        let mut split = two_node();
        whole.advance(10.0, 0.05, Stepper::adaptive());
        split.advance(5.0, 0.05, Stepper::adaptive());
        split.advance(5.0, 0.05, Stepper::adaptive());
        for (a, b) in whole.temperatures().iter().zip(split.temperatures()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// Forces the matrix-free steady solver onto a tiny network and checks
    /// CG agrees with dense LU to round-off, for the steady state and for
    /// the exact stepper that pivots around it.
    #[test]
    fn matrix_free_steady_matches_dense() {
        let build = |limit: Option<usize>| {
            let mut b = RcNetworkBuilder::new(20.0);
            let core = b.add_node("core", 5.0);
            let sink = b.add_node("sink", 50.0);
            b.connect(core, sink, 2.0);
            b.connect_ambient(sink, 1.0);
            if let Some(l) = limit {
                b.set_dense_steady_limit(l);
            }
            let mut net = b.build().unwrap();
            net.set_power(core, 10.0);
            net
        };
        let dense = build(None);
        let mut free = build(Some(0));
        assert!(matches!(free.steady, SteadySolver::MatrixFree));
        let td = dense.steady_state().unwrap();
        let tf = free.steady_state().unwrap();
        for (a, b) in td.iter().zip(&tf) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        let mut dense = build(None);
        dense.step(1.0, Stepper::Exact);
        free.step(1.0, Stepper::Exact);
        for (a, b) in dense.temperatures().iter().zip(free.temperatures()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// A 100-node chain, all grounded: every node reachable, and the
    /// sort-based CSR build handles long rows and duplicate edges.
    #[test]
    fn chain_with_duplicates_builds_and_settles() {
        let mut b = RcNetworkBuilder::new(20.0);
        let nodes: Vec<NodeId> = (0..100).map(|i| b.add_node(format!("n{i}"), 1.0)).collect();
        for w in nodes.windows(2) {
            b.connect(w[0], w[1], 1.0);
            b.connect(w[0], w[1], 0.5); // duplicate accumulates to 1.5
        }
        b.connect_ambient(nodes[0], 2.0);
        let mut net = b.build().unwrap();
        assert_eq!(net.nnz(), 99 * 2);
        net.set_power(nodes[99], 3.0);
        net.settle();
        // All 3 W flow through the single ambient link: node 0 sits at
        // 20 + 3/2; each chain hop adds 3/1.5.
        assert!((net.temperature(nodes[0]) - 21.5).abs() < 1e-6);
        assert!((net.temperature(nodes[1]) - 23.5).abs() < 1e-6);
    }

    #[test]
    fn auto_resolves_by_size_and_solver() {
        // Small dense network: Exact.
        let net = two_node();
        assert_eq!(net.resolve_auto(), Stepper::Exact);
        // Matrix-free network: always adaptive.
        let mut b = RcNetworkBuilder::new(20.0);
        let x = b.add_node("x", 1.0);
        b.connect_ambient(x, 1.0);
        b.set_dense_steady_limit(0);
        let net = b.build().unwrap();
        assert_eq!(net.resolve_auto(), Stepper::adaptive());
    }

    #[test]
    fn auto_crossover_tracks_churn_on_midsize_networks() {
        // 100 nodes: above AUTO_EXACT_MAX_NODES, below DENSE_STEADY_LIMIT.
        let mut b = RcNetworkBuilder::new(20.0);
        let nodes: Vec<NodeId> = (0..100).map(|i| b.add_node(format!("n{i}"), 1.0)).collect();
        for w in nodes.windows(2) {
            b.connect(w[0], w[1], 1.0);
        }
        b.connect_ambient(nodes[0], 2.0);
        let mut net = b.build().unwrap();
        net.set_power(nodes[50], 2.0);
        // Warmup: adaptive until enough history accumulates.
        assert_eq!(net.resolve_auto(), Stepper::adaptive());
        for _ in 0..4 {
            net.advance(0.5, 0.01, Stepper::Auto);
        }
        // Quiet workload: the propagator wins.
        assert_eq!(net.resolve_auto(), Stepper::Exact);
        // Sustained churn flips it back to adaptive.
        for k in 0..8 {
            net.set_power(nodes[50], 2.0 + k as f64);
            net.advance(0.5, 0.01, Stepper::Auto);
        }
        assert_eq!(net.resolve_auto(), Stepper::adaptive());
    }
}
