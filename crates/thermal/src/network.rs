//! General lumped RC thermal networks.
//!
//! A network is a set of thermal nodes, each with a heat capacitance, linked
//! by thermal conductances to each other and (optionally) to the ambient.
//! Temperatures evolve as
//!
//! ```text
//! C_i dT_i/dt = P_i - g_amb_i (T_i - T_amb) - Σ_j g_ij (T_i - T_j)
//! ```
//!
//! which is exactly the HotSpot-style compact model the DAC'14 paper's
//! related work builds on.
//!
//! The network is the innermost loop of every simulation, so it is built
//! for throughput:
//!
//! * the conductance graph is stored in CSR form (neighbour lists), so a
//!   derivative sweep is O(nnz) instead of O(n²);
//! * every integrator works out of preallocated scratch buffers owned by
//!   the network — steady-state stepping performs **zero** heap
//!   allocations (see `tests/zero_alloc.rs`);
//! * [`Stepper::Exact`] advances a whole step with a single matrix-vector
//!   product against the cached propagator `E = exp(-C⁻¹G·dt)`, with the
//!   steady state obtained from an LU factorisation computed once at build
//!   time (only the right-hand side changes when powers or ambient move).

use crate::linalg::{Lu, Matrix, SolveError};
use crate::stepper::Stepper;

/// Identifier of a node inside an [`RcNetwork`].
///
/// Node ids are dense indices handed out by [`RcNetworkBuilder::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Builder for [`RcNetwork`].
///
/// # Example
///
/// ```
/// use thermorl_thermal::{RcNetworkBuilder, Stepper};
///
/// let mut b = RcNetworkBuilder::new(25.0);
/// let a = b.add_node("core", 10.0);
/// let s = b.add_node("sink", 100.0);
/// b.connect(a, s, 2.0); // 2 W/K between core and sink
/// b.connect_ambient(s, 1.0); // sink leaks to ambient
/// let mut net = b.build().unwrap();
/// net.set_power(a, 10.0);
/// net.advance(1200.0, 0.05, Stepper::ForwardEuler);
/// // Steady state: sink = 25 + 10/1 = 35, core = 35 + 10/2 = 40.
/// assert!((net.temperature(a) - 40.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RcNetworkBuilder {
    names: Vec<String>,
    capacitance: Vec<f64>,
    edges: Vec<(usize, usize, f64)>,
    ambient_conductance: Vec<f64>,
    ambient: f64,
}

impl RcNetworkBuilder {
    /// Creates a builder with the given ambient temperature (°C).
    pub fn new(ambient_c: f64) -> Self {
        RcNetworkBuilder {
            ambient: ambient_c,
            ..Default::default()
        }
    }

    /// Adds a node with heat capacitance `capacitance_j_per_k` (J/K) and
    /// returns its id. Initial temperature is ambient.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is not strictly positive.
    pub fn add_node(&mut self, name: impl Into<String>, capacitance_j_per_k: f64) -> NodeId {
        assert!(
            capacitance_j_per_k > 0.0,
            "node capacitance must be positive"
        );
        self.names.push(name.into());
        self.capacitance.push(capacitance_j_per_k);
        self.ambient_conductance.push(0.0);
        NodeId(self.names.len() - 1)
    }

    /// Connects two nodes with a thermal conductance (W/K). Conductances
    /// accumulate if called repeatedly for the same pair.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or the conductance is negative.
    pub fn connect(&mut self, a: NodeId, b: NodeId, conductance_w_per_k: f64) {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(conductance_w_per_k >= 0.0, "conductance must be >= 0");
        self.edges.push((a.0, b.0, conductance_w_per_k));
    }

    /// Connects a node to the ambient with the given conductance (W/K).
    pub fn connect_ambient(&mut self, n: NodeId, conductance_w_per_k: f64) {
        assert!(conductance_w_per_k >= 0.0, "conductance must be >= 0");
        self.ambient_conductance[n.0] += conductance_w_per_k;
    }

    /// Finalises the network: accumulates duplicate edges, compiles the
    /// conductance graph to its CSR neighbour representation, factorises
    /// the steady-state operator once, and preallocates all stepper
    /// scratch space.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NoNodes`] for an empty network and
    /// [`BuildError::Floating`] when some node has no path (direct or
    /// indirect) to the ambient — such a node would heat without bound.
    pub fn build(self) -> Result<RcNetwork, BuildError> {
        let n = self.names.len();
        if n == 0 {
            return Err(BuildError::NoNodes);
        }
        // Accumulate duplicate edges into a dense symmetric matrix (build
        // time only; the steady-state operator needs it anyway for LU).
        let mut g = Matrix::zeros(n);
        for &(a, b, c) in &self.edges {
            g[(a, b)] += c;
            g[(b, a)] += c;
        }
        // Reachability from ambient-connected nodes through positive edges.
        let mut reached = vec![false; n];
        let mut stack: Vec<usize> = (0..n)
            .filter(|&i| self.ambient_conductance[i] > 0.0)
            .collect();
        for &s in &stack {
            reached[s] = true;
        }
        while let Some(i) = stack.pop() {
            for j in 0..n {
                if !reached[j] && g[(i, j)] > 0.0 {
                    reached[j] = true;
                    stack.push(j);
                }
            }
        }
        if let Some(idx) = reached.iter().position(|&r| !r) {
            return Err(BuildError::Floating {
                node: self.names[idx].clone(),
            });
        }
        // CSR neighbour lists (zero-conductance edges are dropped) and the
        // total conductance seen by each node (diagonal of the Laplacian).
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut edge_g = Vec::new();
        let mut diag_g = vec![0.0; n];
        row_ptr.push(0);
        for i in 0..n {
            let mut total = self.ambient_conductance[i];
            for j in 0..n {
                let c = g[(i, j)];
                if c > 0.0 {
                    col_idx.push(j);
                    edge_g.push(c);
                    total += c;
                }
            }
            diag_g[i] = total;
            row_ptr.push(col_idx.len());
        }
        // Steady-state operator A = diag(g_amb + Σg) - G, factorised once.
        // The floating-node check above guarantees A is an irreducibly
        // diagonally dominant M-matrix, hence non-singular.
        let mut a = Matrix::zeros(n);
        for i in 0..n {
            a[(i, i)] = diag_g[i];
            for j in 0..n {
                if g[(i, j)] > 0.0 {
                    a[(i, j)] -= g[(i, j)];
                }
            }
        }
        let lu = a
            .lu()
            .expect("grounded RC networks have a non-singular steady-state operator");
        let temperature = vec![self.ambient; n];
        Ok(RcNetwork {
            names: self.names,
            capacitance: self.capacitance,
            row_ptr,
            col_idx,
            edge_g,
            diag_g,
            lu,
            ambient_conductance: self.ambient_conductance,
            ambient: self.ambient,
            temperature,
            power: vec![0.0; n],
            scratch: Workspace::with_len(n),
            exact: None,
            steady_dirty: true,
            propagator_builds: 0,
            steady_refreshes: 0,
        })
    }
}

/// Error building an [`RcNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The builder contained no nodes.
    NoNodes,
    /// A node has no conductive path to ambient.
    Floating {
        /// Name of the offending node.
        node: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoNodes => write!(f, "network has no nodes"),
            BuildError::Floating { node } => {
                write!(f, "node `{node}` has no path to ambient")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Preallocated stepper scratch, so steady-state stepping never touches
/// the heap. `k1..k4` are the RK4 slopes (`k1` doubles as the Euler slope
/// and the exact step's output), `tmp` holds intermediate states, `t0` the
/// step's initial temperatures.
#[derive(Debug, Clone, Default)]
struct Workspace {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
    t0: Vec<f64>,
}

impl Workspace {
    fn with_len(n: usize) -> Self {
        Workspace {
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            k4: vec![0.0; n],
            tmp: vec![0.0; n],
            t0: vec![0.0; n],
        }
    }
}

/// The cached exact propagator for one step size, plus the steady-state
/// vector it pivots around. Rebuilt only when `dt` changes; the steady
/// state is refreshed (one LU solve against the build-time factorisation)
/// only when powers or ambient have changed since the last exact step.
#[derive(Debug, Clone)]
struct ExactCache {
    dt: f64,
    /// `E = exp(-C⁻¹A·dt)` where `A` is the full conductance Laplacian.
    propagator: Matrix,
    /// Steady-state temperatures for the current `(power, ambient)`.
    t_ss: Vec<f64>,
    /// Right-hand side scratch for the steady-state solve.
    rhs: Vec<f64>,
}

/// A lumped RC thermal network with per-node power injection.
#[derive(Debug, Clone)]
pub struct RcNetwork {
    names: Vec<String>,
    /// Per-node heat capacitance (J/K); shared with [`crate::NetworkBatch`].
    pub(crate) capacitance: Vec<f64>,
    /// CSR row pointers into `col_idx`/`edge_g` (length `n + 1`).
    pub(crate) row_ptr: Vec<usize>,
    /// CSR neighbour indices.
    pub(crate) col_idx: Vec<usize>,
    /// CSR edge conductances (W/K), parallel to `col_idx`.
    pub(crate) edge_g: Vec<f64>,
    /// Per-node total conductance `g_amb_i + Σ_j g_ij` (the Laplacian
    /// diagonal; also drives the Gershgorin stability bound).
    pub(crate) diag_g: Vec<f64>,
    /// LU factorisation of the steady-state operator, computed at build.
    pub(crate) lu: Lu,
    pub(crate) ambient_conductance: Vec<f64>,
    ambient: f64,
    temperature: Vec<f64>,
    power: Vec<f64>,
    scratch: Workspace,
    exact: Option<ExactCache>,
    /// Whether `(power, ambient)` changed since the last steady-state
    /// refresh of the exact cache.
    steady_dirty: bool,
    propagator_builds: u64,
    steady_refreshes: u64,
}

impl RcNetwork {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the network has no nodes (never true for built networks).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of stored directed edges in the CSR conductance graph
    /// (each undirected conductance is stored twice).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Name of a node.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.0]
    }

    /// Ambient temperature (°C).
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Sets the ambient temperature (°C); takes effect on the next step.
    pub fn set_ambient(&mut self, ambient_c: f64) {
        if self.ambient != ambient_c {
            self.ambient = ambient_c;
            self.steady_dirty = true;
        }
    }

    /// Current temperature of a node (°C).
    pub fn temperature(&self, n: NodeId) -> f64 {
        self.temperature[n.0]
    }

    /// All node temperatures, indexed by [`NodeId::index`].
    pub fn temperatures(&self) -> &[f64] {
        &self.temperature
    }

    /// Overrides all node temperatures (e.g. to start from a steady state).
    ///
    /// # Panics
    ///
    /// Panics if `temps.len() != self.len()`.
    pub fn set_temperatures(&mut self, temps: &[f64]) {
        assert_eq!(temps.len(), self.temperature.len());
        self.temperature.copy_from_slice(temps);
    }

    /// Sets the power (W) injected into a node.
    pub fn set_power(&mut self, n: NodeId, watts: f64) {
        if self.power[n.0] != watts {
            self.power[n.0] = watts;
            self.steady_dirty = true;
        }
    }

    /// Power currently injected into a node (W).
    pub fn power(&self, n: NodeId) -> f64 {
        self.power[n.0]
    }

    /// All node powers (W), indexed by [`NodeId::index`] — the batch
    /// loaders copy whole power vectors between dies with this.
    pub fn powers(&self) -> &[f64] {
        &self.power
    }

    /// How many times the exact propagator has been (re)built — once per
    /// distinct step size seen by [`Stepper::Exact`]. Diagnostic for cache
    /// behaviour (tests, benches); mirrored onto the telemetry registry as
    /// the `thermal.propagator_builds` counter when recording is enabled.
    pub fn propagator_builds(&self) -> u64 {
        self.propagator_builds
    }

    /// How many times the exact stepper refreshed its cached steady state
    /// (one LU solve, triggered by power/ambient changes). Diagnostic for
    /// cache behaviour (tests, benches); mirrored onto the telemetry
    /// registry as the `thermal.steady_refreshes` counter.
    pub fn steady_refreshes(&self) -> u64 {
        self.steady_refreshes
    }

    /// Computes the time derivative of all node temperatures (K/s) into
    /// `out` given the temperatures in `t`. One O(nnz) CSR sweep:
    /// `dT_i/dt = (P_i + g_amb_i·T_amb - diag_g_i·T_i + Σ_j g_ij·T_j) / C_i`.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the math
    fn derivative(&self, t: &[f64], out: &mut [f64]) {
        for i in 0..self.temperature.len() {
            let mut q =
                self.power[i] + self.ambient_conductance[i] * self.ambient - self.diag_g[i] * t[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                q += self.edge_g[k] * t[self.col_idx[k]];
            }
            out[i] = q / self.capacitance[i];
        }
    }

    /// Builds the exact propagator `E = exp(-C⁻¹A·dt)` for a step of `dt`
    /// seconds. This is the single construction path shared by the scalar
    /// exact stepper and [`crate::NetworkBatch`], so a batched die and an
    /// independently stepped die apply bit-identical propagators.
    pub(crate) fn propagator_matrix(&self, dt: f64) -> Matrix {
        let n = self.len();
        // M = -dt·C⁻¹A from the CSR graph: row i is scaled by dt/C_i.
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            let scale = dt / self.capacitance[i];
            m[(i, i)] = -self.diag_g[i] * scale;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.edge_g[k] * scale;
            }
        }
        m.expm()
    }

    /// Rebuilds the exact propagator if the cached one was built for a
    /// different step size (or does not exist yet).
    fn ensure_exact_cache(&mut self, dt: f64) {
        if self.exact.as_ref().is_some_and(|c| c.dt == dt) {
            return;
        }
        let n = self.len();
        self.exact = Some(ExactCache {
            dt,
            propagator: self.propagator_matrix(dt),
            t_ss: vec![0.0; n],
            rhs: vec![0.0; n],
        });
        self.propagator_builds += 1;
        thermorl_telemetry::counter!("thermal.propagator_builds");
        thermorl_telemetry::event!("thermal.rebuild", "propagator dt={dt}");
        self.steady_dirty = true;
    }

    /// Advances the network by a single step of `dt` seconds.
    ///
    /// [`Stepper::Exact`] is exact for any `dt` under piecewise-constant
    /// power; the explicit steppers discretise and need `dt` within their
    /// stability/accuracy bounds. No step allocates once the exact
    /// propagator for `dt` is cached.
    pub fn step(&mut self, dt: f64, stepper: Stepper) {
        // The workspace is moved out so its buffers can be borrowed
        // mutably alongside `&self` (a Vec move, not an allocation).
        let mut ws = std::mem::take(&mut self.scratch);
        match stepper {
            Stepper::ForwardEuler => {
                self.derivative(&self.temperature, &mut ws.k1);
                for (t, d) in self.temperature.iter_mut().zip(&ws.k1) {
                    *t += dt * d;
                }
            }
            Stepper::Rk4 => {
                ws.t0.copy_from_slice(&self.temperature);
                self.derivative(&ws.t0, &mut ws.k1);
                for i in 0..ws.t0.len() {
                    ws.tmp[i] = ws.t0[i] + 0.5 * dt * ws.k1[i];
                }
                self.derivative(&ws.tmp, &mut ws.k2);
                for i in 0..ws.t0.len() {
                    ws.tmp[i] = ws.t0[i] + 0.5 * dt * ws.k2[i];
                }
                self.derivative(&ws.tmp, &mut ws.k3);
                for i in 0..ws.t0.len() {
                    ws.tmp[i] = ws.t0[i] + dt * ws.k3[i];
                }
                self.derivative(&ws.tmp, &mut ws.k4);
                for i in 0..ws.t0.len() {
                    self.temperature[i] = ws.t0[i]
                        + dt / 6.0 * (ws.k1[i] + 2.0 * ws.k2[i] + 2.0 * ws.k3[i] + ws.k4[i]);
                }
            }
            Stepper::Exact => {
                self.ensure_exact_cache(dt);
                let mut cache = self.exact.take().expect("cache ensured above");
                if self.steady_dirty {
                    for i in 0..cache.rhs.len() {
                        cache.rhs[i] = self.power[i] + self.ambient_conductance[i] * self.ambient;
                    }
                    self.lu.solve_into(&cache.rhs, &mut cache.t_ss);
                    self.steady_refreshes += 1;
                    thermorl_telemetry::counter!("thermal.steady_refreshes");
                    self.steady_dirty = false;
                }
                // T(t+dt) = T_ss + E·(T(t) - T_ss)
                for i in 0..cache.t_ss.len() {
                    ws.tmp[i] = self.temperature[i] - cache.t_ss[i];
                }
                cache.propagator.mul_vec_into(&ws.tmp, &mut ws.k1);
                for i in 0..cache.t_ss.len() {
                    self.temperature[i] = cache.t_ss[i] + ws.k1[i];
                }
                self.exact = Some(cache);
            }
        }
        self.scratch = ws;
    }

    /// Advances by `duration` seconds.
    ///
    /// [`Stepper::Exact`] covers the whole duration in a single step (it
    /// is exact at any step size under piecewise-constant power). The
    /// explicit steppers take `floor(duration/dt)` full sub-steps (the
    /// count is computed up front, so `advance(a + b)` performs the same
    /// step sequence as `advance(a); advance(b)` whenever `a` and `b` are
    /// multiples of `dt`), then one final partial step with the remainder
    /// so the advance is exact in total time.
    pub fn advance(&mut self, duration: f64, dt: f64, stepper: Stepper) {
        if duration <= 0.0 {
            return;
        }
        if stepper == Stepper::Exact {
            self.step(duration, stepper);
            return;
        }
        let ratio = duration / dt;
        // Snap to an integer step count when duration is a multiple of dt
        // up to floating-point rounding, so no spurious 1e-16 s step runs.
        let steps = if (ratio - ratio.round()).abs() < 1e-9 {
            ratio.round() as u64
        } else {
            ratio.floor() as u64
        };
        for _ in 0..steps {
            self.step(dt, stepper);
        }
        let remainder = duration - steps as f64 * dt;
        if remainder > 1e-12 {
            self.step(remainder, stepper);
        }
    }

    /// Largest forward-Euler step that keeps integration stable, from the
    /// Gershgorin bound on the system's eigenvalues: `dt < 2 / max_i (Σg/C)`.
    pub fn max_stable_dt(&self) -> f64 {
        let worst = self
            .diag_g
            .iter()
            .zip(&self.capacitance)
            .map(|(g, c)| g / c)
            .fold(0.0, f64::max);
        if worst == 0.0 {
            f64::INFINITY
        } else {
            2.0 / worst
        }
    }

    /// Analytic steady-state temperatures for the current power vector,
    /// solving `A T = P + g_amb T_amb` against the LU factorisation
    /// computed once at build time.
    ///
    /// # Errors
    ///
    /// Kept for API stability; networks built through [`RcNetworkBuilder`]
    /// always factorise successfully (every node is grounded to ambient),
    /// so this never fails.
    pub fn steady_state(&self) -> Result<Vec<f64>, SolveError> {
        let b: Vec<f64> = self
            .power
            .iter()
            .zip(&self.ambient_conductance)
            .map(|(p, g)| p + g * self.ambient)
            .collect();
        Ok(self.lu.solve(&b))
    }

    /// Jumps the network straight to its steady state for the current powers.
    ///
    /// # Panics
    ///
    /// Panics if the steady-state solve fails (impossible for built
    /// networks; see [`RcNetwork::steady_state`]).
    pub fn settle(&mut self) {
        let t = self
            .steady_state()
            .expect("built networks always have a grounded, non-singular G");
        self.temperature = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> RcNetwork {
        let mut b = RcNetworkBuilder::new(20.0);
        let core = b.add_node("core", 5.0);
        let sink = b.add_node("sink", 50.0);
        b.connect(core, sink, 2.0);
        b.connect_ambient(sink, 1.0);
        let mut net = b.build().unwrap();
        net.set_power(core, 10.0);
        net
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(
            RcNetworkBuilder::new(20.0).build().unwrap_err(),
            BuildError::NoNodes
        );
    }

    #[test]
    fn build_rejects_floating_node() {
        let mut b = RcNetworkBuilder::new(20.0);
        let a = b.add_node("a", 1.0);
        b.add_node("orphan", 1.0);
        b.connect_ambient(a, 1.0);
        match b.build() {
            Err(BuildError::Floating { node }) => assert_eq!(node, "orphan"),
            other => panic!("expected floating error, got {other:?}"),
        }
    }

    #[test]
    fn csr_stores_each_edge_twice_and_drops_zeros() {
        let mut b = RcNetworkBuilder::new(20.0);
        let x = b.add_node("x", 1.0);
        let y = b.add_node("y", 1.0);
        let z = b.add_node("z", 1.0);
        b.connect(x, y, 1.5);
        b.connect(x, y, 0.5); // accumulates onto the same pair
        b.connect(y, z, 0.0); // dropped
        b.connect(x, z, 3.0);
        b.connect_ambient(x, 1.0);
        let net = b.build().unwrap();
        assert_eq!(net.nnz(), 4, "two positive undirected edges, stored twice");
    }

    #[test]
    fn steady_state_matches_hand_computation() {
        let net = two_node();
        let t = net.steady_state().unwrap();
        // Sink: 20 + 10/1 = 30; core: 30 + 10/2 = 35.
        assert!((t[1] - 30.0).abs() < 1e-9, "{t:?}");
        assert!((t[0] - 35.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn euler_converges_to_steady_state() {
        let mut net = two_node();
        net.advance(500.0, 0.05, Stepper::ForwardEuler);
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 0.05);
        }
    }

    #[test]
    fn rk4_converges_to_steady_state() {
        let mut net = two_node();
        net.advance(500.0, 0.25, Stepper::Rk4);
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 0.05);
        }
    }

    #[test]
    fn exact_converges_to_steady_state() {
        // Slowest time constant is ~55 s; after 4000 s the transient has
        // decayed below f64 resolution, so Exact must sit on the LU answer.
        let mut net = two_node();
        net.advance(4000.0, 0.05, Stepper::Exact);
        let ss = net.steady_state().unwrap();
        for (a, b) in net.temperatures().iter().zip(&ss) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_matches_fine_rk4_on_transient() {
        let mut exact = two_node();
        let mut rk = two_node();
        exact.advance(3.0, 3.0, Stepper::Exact); // one propagator application
        rk.advance(3.0, 1e-3, Stepper::Rk4); // reference at tiny dt
        for (a, b) in exact.temperatures().iter().zip(rk.temperatures()) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn exact_step_is_a_semigroup() {
        // E(a+b)·x == E(b)·E(a)·x: one 2 s step equals two 1 s steps.
        let mut once = two_node();
        let mut twice = two_node();
        once.advance(2.0, 2.0, Stepper::Exact);
        twice.step(1.0, Stepper::Exact);
        twice.step(1.0, Stepper::Exact);
        for (a, b) in once.temperatures().iter().zip(twice.temperatures()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn exact_propagator_cache_invalidates_on_dt_and_ambient() {
        let mut net = two_node();
        net.step(0.1, Stepper::Exact);
        assert_eq!(net.propagator_builds(), 1);
        assert_eq!(net.steady_refreshes(), 1);

        // Same dt, unchanged powers: both caches hit.
        net.step(0.1, Stepper::Exact);
        assert_eq!(net.propagator_builds(), 1);
        assert_eq!(net.steady_refreshes(), 1);

        // New dt: propagator rebuilt.
        net.step(0.2, Stepper::Exact);
        assert_eq!(net.propagator_builds(), 2);

        // Ambient change: steady state refreshed, propagator untouched.
        let refreshes = net.steady_refreshes();
        net.set_ambient(30.0);
        net.step(0.2, Stepper::Exact);
        assert_eq!(net.propagator_builds(), 2);
        assert_eq!(net.steady_refreshes(), refreshes + 1);

        // Power change: steady state refreshed again.
        net.set_power(NodeId(0), 5.0);
        net.step(0.2, Stepper::Exact);
        assert_eq!(net.steady_refreshes(), refreshes + 2);

        // Setting the same power/ambient again is a no-op.
        net.set_power(NodeId(0), 5.0);
        net.set_ambient(30.0);
        net.step(0.2, Stepper::Exact);
        assert_eq!(net.steady_refreshes(), refreshes + 2);
        assert_eq!(net.propagator_builds(), 2);
    }

    #[test]
    fn exact_cache_results_match_cold_network() {
        // A network whose cache was built under different (dt, ambient,
        // power) must agree with a fresh one after invalidation.
        let mut warm = two_node();
        warm.step(0.5, Stepper::Exact);
        warm.set_ambient(28.0);
        warm.set_power(NodeId(0), 4.0);
        let mut cold = two_node();
        cold.set_ambient(28.0);
        cold.set_power(NodeId(0), 4.0);
        cold.set_temperatures(warm.temperatures());
        warm.step(1.0, Stepper::Exact);
        cold.step(1.0, Stepper::Exact);
        for (a, b) in warm.temperatures().iter().zip(cold.temperatures()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn settle_jumps_to_steady_state() {
        let mut net = two_node();
        net.settle();
        assert!((net.temperature(NodeId(0)) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn max_stable_dt_guards_euler() {
        let net = two_node();
        let dt = net.max_stable_dt();
        // Core node: (2.0)/5.0 = 0.4; sink: 3/50 = 0.06 → dt = 2/0.4 = 5 s.
        assert!((dt - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cooling_is_monotone_without_power() {
        let mut net = two_node();
        net.set_power(NodeId(0), 0.0);
        net.set_temperatures(&[80.0, 60.0]);
        let mut prev = net.temperature(NodeId(0));
        for _ in 0..100 {
            net.step(0.05, Stepper::ForwardEuler);
            let now = net.temperature(NodeId(0));
            assert!(now <= prev + 1e-12);
            prev = now;
        }
        assert!(prev > net.ambient() - 1e-9);
    }

    #[test]
    fn more_power_means_hotter_everywhere() {
        let mut lo = two_node();
        let mut hi = two_node();
        hi.set_power(NodeId(0), 20.0);
        lo.advance(50.0, 0.05, Stepper::ForwardEuler);
        hi.advance(50.0, 0.05, Stepper::ForwardEuler);
        for i in 0..lo.len() {
            assert!(hi.temperatures()[i] > lo.temperatures()[i]);
        }
    }

    #[test]
    fn ambient_change_shifts_steady_state() {
        let mut net = two_node();
        net.set_ambient(30.0);
        let t = net.steady_state().unwrap();
        assert!((t[0] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn advance_split_at_dt_multiples_is_bit_identical() {
        // With the sub-step count computed up front, advance(1.0) and
        // advance(0.5); advance(0.5) run the exact same step sequence when
        // the split points are multiples of dt.
        for stepper in [Stepper::ForwardEuler, Stepper::Rk4] {
            let mut a = two_node();
            let mut b = two_node();
            a.advance(1.0, 0.25, stepper); // 4 full steps
            b.advance(0.5, 0.25, stepper); // 2 + 2 full steps
            b.advance(0.5, 0.25, stepper);
            assert_eq!(
                a.temperatures(),
                b.temperatures(),
                "split advance must be bit-identical for {stepper}"
            );
        }
    }

    #[test]
    fn advance_handles_partial_final_step() {
        let mut a = two_node();
        let mut b = two_node();
        a.advance(1.0, 0.3, Stepper::Rk4); // 0.3+0.3+0.3+0.1
        b.advance(0.5, 0.3, Stepper::Rk4); // 0.3+0.2, then 0.3+0.2
        b.advance(0.5, 0.3, Stepper::Rk4);
        // Not bit-identical (different step splits) but physically close.
        assert!((a.temperature(NodeId(0)) - b.temperature(NodeId(0))).abs() < 1e-3);
    }

    #[test]
    fn advance_near_multiple_does_not_take_spurious_step() {
        // 0.3 * 3 accumulates to 0.8999999999999999; advance by that
        // amount with dt = 0.3 must take exactly 3 steps, not 3 + a
        // ~1e-16 s tail step.
        let mut a = two_node();
        let mut b = two_node();
        a.advance(0.3 + 0.3 + 0.3, 0.3, Stepper::Rk4);
        for _ in 0..3 {
            b.step(0.3, Stepper::Rk4);
        }
        assert_eq!(a.temperatures(), b.temperatures());
    }
}
