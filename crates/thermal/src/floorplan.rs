//! Die floorplans and the standard core/spreader/sink package model.
//!
//! The evaluation platform of the DAC'14 paper is an Intel quad-core; we
//! model its package as a 2×2 grid of core nodes laterally coupled to their
//! orthogonal neighbours, all attached to a shared heat spreader which feeds
//! a heatsink grounded to ambient. The default [`DieParams`] are calibrated
//! (see `DESIGN.md` §6) so that an idle die sits in the low thirties °C and
//! a fully loaded one in the low-to-mid seventies, matching the temperature
//! ranges of the paper's Table 2.

use serde::{Deserialize, Serialize};

use crate::network::{NodeId, RcNetwork, RcNetworkBuilder};
use crate::stepper::Stepper;
use crate::AMBIENT_C;

/// A rectangular grid-of-cores floorplan.
///
/// Cores are numbered row-major: core `i` sits at
/// `(i % width, i / width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Floorplan {
    width: usize,
    height: usize,
}

impl Floorplan {
    /// Creates a `width` × `height` grid floorplan.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "floorplan must be non-empty");
        Floorplan { width, height }
    }

    /// The 2×2 quad-core floorplan of the paper's platform.
    pub fn quad() -> Self {
        Floorplan::grid(2, 2)
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.width * self.height
    }

    /// Grid position of a core.
    pub fn position(&self, core: usize) -> (usize, usize) {
        (core % self.width, core / self.width)
    }

    /// Pairs of orthogonally adjacent cores, each listed once.
    pub fn adjacent_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for y in 0..self.height {
            for x in 0..self.width {
                let i = y * self.width + x;
                if x + 1 < self.width {
                    pairs.push((i, i + 1));
                }
                if y + 1 < self.height {
                    pairs.push((i, i + self.width));
                }
            }
        }
        pairs
    }
}

/// Per-core big.LITTLE classes for heterogeneous floorplans.
///
/// The first [`HeteroMix::big_cores`] cores in row-major [`Floorplan`]
/// order are the "big" class; the rest are "LITTLE". Each class scales
/// the baseline [`DieParams`] core capacitance and core conductances
/// (core-to-spreader and lateral — coupled classes use the geometric
/// mean of their scales), modelling the larger silicon area and stronger
/// spreader contact of a big core versus the small, weakly-coupled
/// LITTLE one. With `hetero: None` the die is homogeneous and builds the
/// exact same network as before, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeteroMix {
    /// Number of "big" cores (the first `big_cores` in row-major order).
    pub big_cores: usize,
    /// Capacitance scale applied to big cores.
    pub big_capacitance_scale: f64,
    /// Conductance scale applied to big cores.
    pub big_conductance_scale: f64,
    /// Capacitance scale applied to LITTLE cores.
    pub little_capacitance_scale: f64,
    /// Conductance scale applied to LITTLE cores.
    pub little_conductance_scale: f64,
}

impl HeteroMix {
    /// A representative big.LITTLE split: big cores carry 1.6× the
    /// thermal mass with 1.3× the conductance; LITTLE cores 0.55× and
    /// 0.75× respectively (cf. the NPU-IL paper's platform classes).
    pub fn big_little(big_cores: usize) -> Self {
        HeteroMix {
            big_cores,
            big_capacitance_scale: 1.6,
            big_conductance_scale: 1.3,
            little_capacitance_scale: 0.55,
            little_conductance_scale: 0.75,
        }
    }

    /// `(capacitance_scale, conductance_scale)` for a core index.
    pub fn scales(&self, core: usize) -> (f64, f64) {
        if core < self.big_cores {
            (self.big_capacitance_scale, self.big_conductance_scale)
        } else {
            (self.little_capacitance_scale, self.little_conductance_scale)
        }
    }

    /// Validates that every scale is finite and positive.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("big_capacitance_scale", self.big_capacitance_scale),
            ("big_conductance_scale", self.big_conductance_scale),
            ("little_capacitance_scale", self.little_capacitance_scale),
            ("little_conductance_scale", self.little_conductance_scale),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("hetero {name} must be finite and positive"));
            }
        }
        Ok(())
    }
}

/// Physical package parameters for [`DieModel`].
///
/// Resistances are in K/W, capacitances in J/K. The defaults give a core
/// time constant of ≈0.7 s (fast enough that second-scale activity bursts
/// produce visible thermal cycles) and a heatsink time constant of ≈37 s
/// (slow drift across application phases).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieParams {
    /// Heat capacitance of each core node (J/K).
    pub core_capacitance: f64,
    /// Thermal resistance from each core to the spreader (K/W).
    pub core_to_spreader: f64,
    /// Lateral conductance between adjacent cores (W/K).
    pub lateral_conductance: f64,
    /// Heat capacitance of the spreader node (J/K).
    pub spreader_capacitance: f64,
    /// Thermal resistance from spreader to heatsink (K/W).
    pub spreader_to_sink: f64,
    /// Heat capacitance of the heatsink (J/K).
    pub sink_capacitance: f64,
    /// Thermal resistance from heatsink to ambient (K/W).
    pub sink_to_ambient: f64,
    /// Ambient temperature (°C).
    pub ambient: f64,
    /// Internal integration step (s). Ignored by [`Stepper::Exact`], which
    /// covers any advance duration in a single propagator application.
    pub sim_dt: f64,
    /// Integration scheme. Defaults to [`Stepper::Exact`]: power is
    /// piecewise constant between simulation ticks, so the cached
    /// matrix-exponential step is both exact and the fastest option.
    pub stepper: Stepper,
    /// Optional per-core big.LITTLE classes. `None` (the default) builds
    /// the homogeneous network unchanged.
    pub hetero: Option<HeteroMix>,
}

impl Default for DieParams {
    fn default() -> Self {
        DieParams {
            core_capacitance: 0.6,
            core_to_spreader: 1.2,
            lateral_conductance: 0.8,
            spreader_capacitance: 30.0,
            spreader_to_sink: 0.05,
            sink_capacitance: 150.0,
            sink_to_ambient: 0.25,
            ambient: AMBIENT_C,
            sim_dt: 0.01,
            stepper: Stepper::Exact,
            hetero: None,
        }
    }
}

impl DieParams {
    /// Validates physical sanity of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.core_capacitance <= 0.0
            || self.spreader_capacitance <= 0.0
            || self.sink_capacitance <= 0.0
        {
            return Err("capacitances must be positive".into());
        }
        if self.core_to_spreader <= 0.0
            || self.spreader_to_sink <= 0.0
            || self.sink_to_ambient <= 0.0
        {
            return Err("resistances must be positive".into());
        }
        if self.lateral_conductance < 0.0 {
            return Err("lateral conductance must be non-negative".into());
        }
        if self.sim_dt <= 0.0 {
            return Err("sim_dt must be positive".into());
        }
        if let Stepper::Adaptive { rel_tol, abs_tol } = self.stepper {
            if !rel_tol.is_finite() || rel_tol <= 0.0 || !abs_tol.is_finite() || abs_tol <= 0.0 {
                return Err("adaptive tolerances must be finite and positive".into());
            }
        }
        if let Some(h) = &self.hetero {
            h.validate()?;
        }
        Ok(())
    }

    /// Capacitance and conductance scale for one core under the optional
    /// heterogeneous mix; `(1, 1)` when the die is homogeneous.
    fn core_scales(&self, core: usize) -> (f64, f64) {
        match &self.hetero {
            Some(h) => h.scales(core),
            None => (1.0, 1.0),
        }
    }
}

/// A multicore die: floorplan + RC package model, with per-core power
/// injection and per-core temperature readout.
#[derive(Debug, Clone)]
pub struct DieModel {
    floorplan: Floorplan,
    params: DieParams,
    network: RcNetwork,
    core_nodes: Vec<NodeId>,
    spreader: NodeId,
    sink: NodeId,
}

impl DieModel {
    /// Builds a die from a floorplan and parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`DieParams::validate`], if a heterogeneous
    /// mix names more big cores than the floorplan holds, or if the
    /// forward Euler step is outside the stability bound of the resulting
    /// network.
    pub fn new(floorplan: Floorplan, params: DieParams) -> Self {
        params.validate().expect("invalid die parameters");
        if let Some(h) = &params.hetero {
            assert!(
                h.big_cores <= floorplan.num_cores(),
                "hetero mix has {} big cores but the floorplan only {}",
                h.big_cores,
                floorplan.num_cores()
            );
        }
        let mut b = RcNetworkBuilder::new(params.ambient);
        // Per-core class scales; the homogeneous (1, 1) scales multiply
        // out exactly, so `hetero: None` builds bit-identical networks.
        let core_nodes: Vec<NodeId> = (0..floorplan.num_cores())
            .map(|i| {
                let (cap_scale, _) = params.core_scales(i);
                b.add_node(format!("core{i}"), params.core_capacitance * cap_scale)
            })
            .collect();
        let spreader = b.add_node("spreader", params.spreader_capacitance);
        let sink = b.add_node("sink", params.sink_capacitance);
        for (i, &c) in core_nodes.iter().enumerate() {
            let (_, g_scale) = params.core_scales(i);
            b.connect(c, spreader, (1.0 / params.core_to_spreader) * g_scale);
        }
        for (a, c) in floorplan.adjacent_pairs() {
            // Coupled cores of different classes meet at the geometric
            // mean of their conductance scales.
            let g = (params.core_scales(a).1 * params.core_scales(c).1).sqrt();
            b.connect(core_nodes[a], core_nodes[c], params.lateral_conductance * g);
        }
        b.connect(spreader, sink, 1.0 / params.spreader_to_sink);
        b.connect_ambient(sink, 1.0 / params.sink_to_ambient);
        let network = b.build().expect("die network is always grounded");
        if params.stepper == Stepper::ForwardEuler {
            assert!(
                params.sim_dt < network.max_stable_dt(),
                "sim_dt {} exceeds the forward-Euler stability bound {}",
                params.sim_dt,
                network.max_stable_dt()
            );
        }
        DieModel {
            floorplan,
            params,
            network,
            core_nodes,
            spreader,
            sink,
        }
    }

    /// A quad-core die with default calibrated parameters.
    pub fn quad_core() -> Self {
        DieModel::new(Floorplan::quad(), DieParams::default())
    }

    /// A finer-grained die: each core is split into a *compute* node (the
    /// sensed hotspot, carrying the injected power) and an adjacent
    /// *cache* node with its own thermal mass, both feeding the spreader.
    /// Same package calibration as [`DieModel::new`], but core-local
    /// transients are sharper because the compute block is lighter.
    ///
    /// # Panics
    ///
    /// Panics like [`DieModel::new`] on invalid parameters.
    pub fn detailed(floorplan: Floorplan, params: DieParams) -> Self {
        params.validate().expect("invalid die parameters");
        if let Some(h) = &params.hetero {
            assert!(
                h.big_cores <= floorplan.num_cores(),
                "hetero mix has {} big cores but the floorplan only {}",
                h.big_cores,
                floorplan.num_cores()
            );
        }
        let mut b = RcNetworkBuilder::new(params.ambient);
        // Split the core's mass 40/60 between compute and cache; per-core
        // class scales apply to both blocks (exact 1× when homogeneous).
        let c_compute = params.core_capacitance * 0.4;
        let c_cache = params.core_capacitance * 0.6;
        let mut core_nodes = Vec::with_capacity(floorplan.num_cores());
        let mut cache_nodes = Vec::with_capacity(floorplan.num_cores());
        for i in 0..floorplan.num_cores() {
            let (cap_scale, g_scale) = params.core_scales(i);
            let compute = b.add_node(format!("core{i}"), c_compute * cap_scale);
            let cache = b.add_node(format!("cache{i}"), c_cache * cap_scale);
            // Tight internal coupling between the blocks.
            b.connect(compute, cache, (4.0 / params.core_to_spreader) * g_scale);
            core_nodes.push(compute);
            cache_nodes.push(cache);
        }
        let spreader = b.add_node("spreader", params.spreader_capacitance);
        let sink = b.add_node("sink", params.sink_capacitance);
        for i in 0..floorplan.num_cores() {
            // Both blocks reach the spreader; the split halves keep the
            // total core-to-spreader conductance of the simple model.
            let (_, g_scale) = params.core_scales(i);
            b.connect(
                core_nodes[i],
                spreader,
                (0.5 / params.core_to_spreader) * g_scale,
            );
            b.connect(
                cache_nodes[i],
                spreader,
                (0.5 / params.core_to_spreader) * g_scale,
            );
        }
        for (a, c) in floorplan.adjacent_pairs() {
            let g = (params.core_scales(a).1 * params.core_scales(c).1).sqrt();
            b.connect(core_nodes[a], core_nodes[c], params.lateral_conductance * g);
        }
        b.connect(spreader, sink, 1.0 / params.spreader_to_sink);
        b.connect_ambient(sink, 1.0 / params.sink_to_ambient);
        let network = b.build().expect("die network is always grounded");
        if params.stepper == Stepper::ForwardEuler {
            assert!(
                params.sim_dt < network.max_stable_dt(),
                "sim_dt {} exceeds the forward-Euler stability bound {}",
                params.sim_dt,
                network.max_stable_dt()
            );
        }
        DieModel {
            floorplan,
            params,
            network,
            core_nodes,
            spreader,
            sink,
        }
    }

    /// Number of cores on the die.
    pub fn num_cores(&self) -> usize {
        self.core_nodes.len()
    }

    /// The die's floorplan.
    pub fn floorplan(&self) -> Floorplan {
        self.floorplan
    }

    /// The physical parameters the die was built with.
    pub fn params(&self) -> &DieParams {
        &self.params
    }

    /// Sets the power (W) dissipated on a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_core_power(&mut self, core: usize, watts: f64) {
        self.network.set_power(self.core_nodes[core], watts);
    }

    /// Power currently dissipated on a core (W).
    pub fn core_power(&self, core: usize) -> f64 {
        self.network.power(self.core_nodes[core])
    }

    /// Advances the thermal state by `duration` seconds with the configured
    /// internal step.
    pub fn advance(&mut self, duration: f64) {
        self.network
            .advance(duration, self.params.sim_dt, self.params.stepper);
    }

    /// Jumps to the steady state for the current power assignment.
    pub fn settle(&mut self) {
        self.network.settle();
    }

    /// Changes the ambient temperature (°C); affects subsequent steps.
    pub fn set_ambient(&mut self, ambient_c: f64) {
        self.network.set_ambient(ambient_c);
    }

    /// Current ambient temperature (°C).
    pub fn ambient(&self) -> f64 {
        self.network.ambient()
    }

    /// Exact (un-quantised) temperature of a core (°C).
    pub fn core_temperature(&self, core: usize) -> f64 {
        self.network.temperature(self.core_nodes[core])
    }

    /// Exact temperatures of all cores (°C), indexed by core id.
    pub fn core_temperatures(&self) -> Vec<f64> {
        self.core_nodes
            .iter()
            .map(|&n| self.network.temperature(n))
            .collect()
    }

    /// Temperature of the heat spreader (°C).
    pub fn spreader_temperature(&self) -> f64 {
        self.network.temperature(self.spreader)
    }

    /// Temperature of the heatsink (°C).
    pub fn sink_temperature(&self) -> f64 {
        self.network.temperature(self.sink)
    }

    /// Hottest core temperature (°C).
    pub fn max_core_temperature(&self) -> f64 {
        self.core_temperatures()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Access to the underlying network (e.g. for custom instrumentation).
    pub fn network(&self) -> &RcNetwork {
        &self.network
    }

    /// The network node of each core, indexed by core id — the map
    /// [`crate::DieBatch`] uses to address core powers inside a batch.
    pub fn core_nodes(&self) -> &[NodeId] {
        &self.core_nodes
    }

    /// Overrides all node temperatures (network node order) without
    /// touching powers or ambient — how a batched advance writes its
    /// result back into the die it was copied from.
    ///
    /// # Panics
    ///
    /// Panics if `temps` does not cover every network node.
    pub fn set_node_temperatures(&mut self, temps: &[f64]) {
        self.network.set_temperatures(temps);
    }

    /// The die's full mutable thermal state — `(node temperatures,
    /// per-core powers, ambient)` — everything a checkpoint needs; the
    /// structure (floorplan, parameters) is configuration and stays out.
    /// Temperatures cover *all* nodes (cores, caches, spreader, sink) in
    /// network order.
    pub fn thermal_state(&self) -> (Vec<f64>, Vec<f64>, f64) {
        (
            self.network.temperatures().to_vec(),
            (0..self.core_nodes.len())
                .map(|c| self.core_power(c))
                .collect(),
            self.ambient(),
        )
    }

    /// Restores state captured by [`DieModel::thermal_state`] onto a die
    /// built from the same floorplan and parameters; subsequent
    /// [`DieModel::advance`] calls continue bit-identically to the
    /// checkpointed die.
    ///
    /// # Panics
    ///
    /// Panics if `temps` does not cover every network node.
    pub fn restore_thermal_state(&mut self, temps: &[f64], core_powers: &[f64], ambient: f64) {
        self.network.set_ambient(ambient);
        let cores = self.core_nodes.len().min(core_powers.len());
        for (core, &power) in core_powers.iter().enumerate().take(cores) {
            self.set_core_power(core, power);
        }
        self.network.set_temperatures(temps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_floorplan_adjacency() {
        let fp = Floorplan::quad();
        let mut pairs = fp.adjacent_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn grid_positions_are_row_major() {
        let fp = Floorplan::grid(3, 2);
        assert_eq!(fp.position(0), (0, 0));
        assert_eq!(fp.position(2), (2, 0));
        assert_eq!(fp.position(4), (1, 1));
        assert_eq!(fp.num_cores(), 6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_floorplan_panics() {
        let _ = Floorplan::grid(0, 3);
    }

    #[test]
    fn idle_die_settles_near_ambient_plus_leakage() {
        let mut die = DieModel::quad_core();
        for c in 0..4 {
            die.set_core_power(c, 2.0); // idle leakage per core
        }
        die.settle();
        let t = die.core_temperature(0);
        // 8 W total: sink 27, spreader 27.4, cores slightly above.
        assert!(t > 28.0 && t < 33.0, "idle core at {t} degC");
    }

    #[test]
    fn fully_loaded_die_reaches_seventies() {
        let mut die = DieModel::quad_core();
        for c in 0..4 {
            die.set_core_power(c, 20.0);
        }
        die.settle();
        let t = die.max_core_temperature();
        assert!(t > 65.0 && t < 85.0, "loaded core at {t} degC");
    }

    #[test]
    fn hotspot_forms_on_loaded_core() {
        let mut die = DieModel::quad_core();
        die.set_core_power(0, 20.0);
        for c in 1..4 {
            die.set_core_power(c, 2.0);
        }
        die.settle();
        let t = die.core_temperatures();
        assert!(t[0] > t[1] + 5.0, "{t:?}");
        assert!(t[0] > t[3] + 5.0, "{t:?}");
        // Adjacent cores (1, 2) warm more than the diagonal one (3).
        assert!(t[1] > t[3] - 1e-9, "{t:?}");
    }

    #[test]
    fn advance_approaches_settle() {
        let mut a = DieModel::quad_core();
        let mut b = a.clone();
        for c in 0..4 {
            a.set_core_power(c, 10.0);
            b.set_core_power(c, 10.0);
        }
        a.advance(600.0);
        b.settle();
        assert!((a.core_temperature(0) - b.core_temperature(0)).abs() < 0.2);
    }

    #[test]
    fn core_time_constant_is_subsecond_scale() {
        // Step power on one core; most of the core-local rise happens in the
        // first couple of seconds (needed so bursty workloads produce
        // measurable thermal cycles at the paper's 1-3 s sampling).
        let mut die = DieModel::quad_core();
        for c in 0..4 {
            die.set_core_power(c, 2.0);
        }
        die.settle();
        let t0 = die.core_temperature(0);
        die.set_core_power(0, 20.0);
        die.advance(2.0);
        let t2 = die.core_temperature(0);
        die.settle();
        let tinf = die.core_temperature(0);
        let local_rise_frac = (t2 - t0) / (tinf - t0);
        assert!(
            local_rise_frac > 0.5,
            "only {local_rise_frac:.2} of the rise after 2 s"
        );
    }

    #[test]
    fn sink_is_much_slower_than_core() {
        let mut die = DieModel::quad_core();
        for c in 0..4 {
            die.set_core_power(c, 20.0);
        }
        let s0 = die.sink_temperature();
        die.advance(2.0);
        let s2 = die.sink_temperature();
        die.settle();
        let sinf = die.sink_temperature();
        assert!((s2 - s0) / (sinf - s0) < 0.3, "sink rose too fast");
    }

    #[test]
    #[should_panic(expected = "stability bound")]
    fn unstable_dt_is_rejected() {
        let params = DieParams {
            sim_dt: 10.0,
            stepper: Stepper::ForwardEuler,
            ..DieParams::default()
        };
        let _ = DieModel::new(Floorplan::quad(), params);
    }

    #[test]
    fn exact_stepper_accepts_any_dt() {
        // The stability bound only constrains forward Euler; the exact
        // propagator is unconditionally stable.
        let params = DieParams {
            sim_dt: 10.0,
            ..DieParams::default()
        };
        let mut die = DieModel::new(Floorplan::quad(), params);
        for c in 0..4 {
            die.set_core_power(c, 12.0);
        }
        die.advance(600.0);
        let mut settled = die.clone();
        settled.settle();
        assert!((die.core_temperature(0) - settled.core_temperature(0)).abs() < 1e-3);
    }

    #[test]
    fn params_validation_rejects_nonphysical() {
        let bad = |patch: fn(&mut DieParams)| {
            let mut p = DieParams::default();
            patch(&mut p);
            p
        };
        assert!(bad(|p| p.core_capacitance = -1.0).validate().is_err());
        assert!(bad(|p| p.sink_to_ambient = 0.0).validate().is_err());
        assert!(bad(|p| p.sim_dt = 0.0).validate().is_err());
        assert!(DieParams::default().validate().is_ok());
    }

    #[test]
    fn detailed_die_agrees_on_steady_state_scale() {
        let mut simple = DieModel::quad_core();
        let mut detailed = DieModel::detailed(Floorplan::quad(), DieParams::default());
        for c in 0..4 {
            simple.set_core_power(c, 12.0);
            detailed.set_core_power(c, 12.0);
        }
        simple.settle();
        detailed.settle();
        // Same heat reaches ambient, so the sink matches exactly and the
        // compute hotspot runs a little hotter than the lumped core.
        assert!((simple.sink_temperature() - detailed.sink_temperature()).abs() < 1e-6);
        let ds = detailed.core_temperature(0);
        let ss = simple.core_temperature(0);
        assert!(
            ds > ss - 2.0 && ds < ss + 15.0,
            "detailed {ds} vs simple {ss}"
        );
    }

    #[test]
    fn detailed_die_has_sharper_transients() {
        // The lighter compute block responds faster to a power step.
        let step_response = |mut die: DieModel| {
            for c in 0..4 {
                die.set_core_power(c, 2.0);
            }
            die.settle();
            let t0 = die.core_temperature(0);
            die.set_core_power(0, 20.0);
            die.advance(0.5);
            die.core_temperature(0) - t0
        };
        let simple = step_response(DieModel::quad_core());
        let detailed = step_response(DieModel::detailed(Floorplan::quad(), DieParams::default()));
        assert!(
            detailed > simple,
            "detailed rise {detailed} should beat simple {simple}"
        );
    }

    #[test]
    fn ambient_change_warms_the_die() {
        let mut die = DieModel::quad_core();
        for c in 0..4 {
            die.set_core_power(c, 5.0);
        }
        die.settle();
        let before = die.core_temperature(0);
        die.set_ambient(die.ambient() + 10.0);
        die.settle();
        let after = die.core_temperature(0);
        assert!((after - before - 10.0).abs() < 1e-6, "{before} -> {after}");
    }

    #[test]
    fn thermal_state_round_trip_is_bit_exact() {
        let mut donor = DieModel::quad_core();
        for c in 0..4 {
            donor.set_core_power(c, 8.0 + c as f64 * 2.5);
        }
        donor.advance(7.3);
        let (temps, powers, ambient) = donor.thermal_state();

        let mut twin = DieModel::quad_core();
        twin.restore_thermal_state(&temps, &powers, ambient);
        for (a, b) in twin
            .core_temperatures()
            .iter()
            .zip(donor.core_temperatures())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And the restored die advances bit-identically.
        donor.advance(11.0);
        twin.advance(11.0);
        for (a, b) in twin
            .network()
            .temperatures()
            .iter()
            .zip(donor.network().temperatures())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "advance diverged after restore");
        }
    }

    #[test]
    fn rk4_die_matches_default_die() {
        let params_rk = DieParams {
            stepper: Stepper::Rk4,
            sim_dt: 0.05,
            ..DieParams::default()
        };
        let mut a = DieModel::new(Floorplan::quad(), DieParams::default());
        let mut b = DieModel::new(Floorplan::quad(), params_rk);
        for c in 0..4 {
            a.set_core_power(c, 12.0);
            b.set_core_power(c, 12.0);
        }
        a.advance(30.0);
        b.advance(30.0);
        assert!((a.core_temperature(0) - b.core_temperature(0)).abs() < 0.1);
    }

    #[test]
    fn hetero_none_builds_bit_identical_network() {
        // An explicit hetero mix with all-1.0 scales and the plain
        // homogeneous die must advance to the exact same bits.
        let uniform = HeteroMix {
            big_cores: 2,
            big_capacitance_scale: 1.0,
            big_conductance_scale: 1.0,
            little_capacitance_scale: 1.0,
            little_conductance_scale: 1.0,
        };
        let mut plain = DieModel::quad_core();
        let mut mixed = DieModel::new(
            Floorplan::quad(),
            DieParams {
                hetero: Some(uniform),
                ..DieParams::default()
            },
        );
        for c in 0..4 {
            plain.set_core_power(c, 9.0 + c as f64);
            mixed.set_core_power(c, 9.0 + c as f64);
        }
        plain.advance(5.0);
        mixed.advance(5.0);
        for (a, b) in plain
            .network()
            .temperatures()
            .iter()
            .zip(mixed.network().temperatures())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn big_cores_heat_slower_than_little_under_equal_power() {
        // big.LITTLE: core 0-1 big (heavier, better coupled), 2-3 LITTLE.
        let mut die = DieModel::new(
            Floorplan::quad(),
            DieParams {
                hetero: Some(HeteroMix::big_little(2)),
                ..DieParams::default()
            },
        );
        for c in 0..4 {
            die.set_core_power(c, 12.0);
        }
        die.advance(1.0);
        // Early transient: the heavy big core lags the light LITTLE one.
        assert!(
            die.core_temperature(0) < die.core_temperature(3),
            "big {} vs little {}",
            die.core_temperature(0),
            die.core_temperature(3)
        );
        // Steady state: the better-coupled big core also runs cooler.
        die.settle();
        assert!(die.core_temperature(0) < die.core_temperature(3));
    }

    #[test]
    fn hetero_works_on_detailed_dies_and_adaptive_stepper() {
        let params = DieParams {
            hetero: Some(HeteroMix::big_little(1)),
            stepper: Stepper::adaptive(),
            ..DieParams::default()
        };
        let mut die = DieModel::detailed(Floorplan::quad(), params);
        for c in 0..4 {
            die.set_core_power(c, 10.0);
        }
        die.advance(5.0);
        let mut settled = die.clone();
        settled.settle();
        // Partially risen, ordered below steady state.
        assert!(die.core_temperature(0) > 26.0);
        assert!(die.core_temperature(0) < settled.core_temperature(0));
    }

    #[test]
    #[should_panic(expected = "big cores")]
    fn hetero_with_too_many_big_cores_panics() {
        let _ = DieModel::new(
            Floorplan::quad(),
            DieParams {
                hetero: Some(HeteroMix::big_little(5)),
                ..DieParams::default()
            },
        );
    }

    #[test]
    fn hetero_validation_rejects_bad_scales() {
        let mut h = HeteroMix::big_little(2);
        h.little_conductance_scale = 0.0;
        assert!(DieParams {
            hetero: Some(h),
            ..DieParams::default()
        }
        .validate()
        .is_err());
        assert!(DieParams {
            hetero: Some(HeteroMix::big_little(2)),
            ..DieParams::default()
        }
        .validate()
        .is_ok());
    }
}
