//! Compact RC thermal simulation for multicore dies.
//!
//! This crate provides the *hardware thermal substrate* used by the
//! DAC'14 reproduction: a lumped resistance–capacitance (RC) network in the
//! style of HotSpot's compact models, plus the pieces a run-time thermal
//! manager observes and manipulates:
//!
//! * [`RcNetwork`] — an arbitrary thermal RC network with explicit
//!   integration ([`Stepper`]) and an analytic steady state obtained by LU
//!   decomposition ([`linalg`]) on small networks or matrix-free
//!   conjugate gradient on large ones.
//! * [`rk`] — embedded adaptive Runge–Kutta tableaus ([`rk::RkTable`])
//!   behind [`Stepper::Adaptive`], the large-floorplan fast path.
//! * [`Floorplan`] / [`DieModel`] — a grid-of-cores die description and the
//!   standard core + spreader + heatsink network built from it, with
//!   optional per-core big.LITTLE classes ([`HeteroMix`]).
//! * [`ThermalSensor`] / [`SensorBank`] — quantised, noisy on-die sensors,
//!   the only view of temperature available to controllers.
//!
//! # Example
//!
//! ```
//! use thermorl_thermal::DieModel;
//!
//! // A quad-core die with default (calibrated) package parameters.
//! let mut die = DieModel::quad_core();
//! // 15 W on core 0, idle elsewhere; simulate one second.
//! die.set_core_power(0, 15.0);
//! die.advance(1.0);
//! assert!(die.core_temperature(0) > die.core_temperature(3));
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod floorplan;
pub mod linalg;
pub mod network;
pub mod rk;
pub mod sensor;
mod sparse;
pub mod stepper;

pub use batch::{DieBatch, NetworkBatch};
pub use floorplan::{DieModel, DieParams, Floorplan, HeteroMix};
pub use network::{NodeId, RcNetwork, RcNetworkBuilder, DENSE_STEADY_LIMIT};
pub use sensor::{SensorBank, SensorParams, ThermalSensor};
pub use stepper::Stepper;

/// Default ambient temperature in degrees Celsius used by the presets.
///
/// The DAC'14 platform is a desktop-class Intel quad-core; 25 °C is a typical
/// lab ambient and yields idle die temperatures in the low thirties, matching
/// the paper's Table 2 mpeg rows.
pub const AMBIENT_C: f64 = 25.0;

/// Converts degrees Celsius to Kelvin.
///
/// Reliability models (Arrhenius terms) need absolute temperature; the rest
/// of the crate works in Celsius, like the paper's figures.
#[inline]
pub fn celsius_to_kelvin(c: f64) -> f64 {
    c + 273.15
}

/// Converts Kelvin to degrees Celsius.
#[inline]
pub fn kelvin_to_celsius(k: f64) -> f64 {
    k - 273.15
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_roundtrip() {
        let c = 54.3;
        assert!((kelvin_to_celsius(celsius_to_kelvin(c)) - c).abs() < 1e-12);
    }

    #[test]
    fn kelvin_of_zero_c() {
        assert!((celsius_to_kelvin(0.0) - 273.15).abs() < 1e-12);
    }
}
