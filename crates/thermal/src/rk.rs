//! Embedded adaptive Runge–Kutta integration behind a Butcher-table trait.
//!
//! The integrator is generic over an [`RkTable`] — a compile-time Butcher
//! tableau with an embedded lower-order error row — so pairs like
//! Dormand–Prince 5(4) and Cash–Karp 4(5) share one zero-alloc kernel.
//! Step size is driven by a per-node error estimate
//! `sc_i = abs_tol + rel_tol·max(|y_i|, |y'_i|)` (RMS over nodes) and a
//! PI controller (accept factor `0.9·err^(−0.7/p)·err_prev^(0.4/p)`,
//! clamped to `[0.2, 10]`), with first-same-as-last (FSAL) stage reuse
//! for tables whose solution row equals their final stage row.
//!
//! The thermal ODE is autonomous within one advance (power and ambient
//! are held piecewise constant), so the tableau's `c` nodes never enter
//! the right-hand side and are omitted.

use crate::sparse::OdeView;

/// Maximum stage count across the provided tables; sizes the stage
/// buffers in the network/batch workspaces.
pub const MAX_RK_STAGES: usize = 7;

/// A Butcher tableau for an embedded explicit Runge–Kutta pair.
///
/// `A[s]` holds the `s` coupling coefficients feeding stage `s` (row 0 is
/// empty). `B` is the higher-order solution row; `E = B − B̂` is the
/// difference against the embedded lower-order row, so `h·Σ E_s·k_s` is
/// the local error estimate directly. When `FSAL` is true, `A`'s last row
/// equals `B`, so the final stage state *is* the solution and its
/// derivative seeds stage 0 of the next step for free.
pub trait RkTable {
    /// Human-readable name, for diagnostics.
    const NAME: &'static str;
    /// Number of stages.
    const STAGES: usize;
    /// Order used for step-size control (the propagated solution's order).
    const ORDER: usize;
    /// First-same-as-last: last `A` row equals `B`.
    const FSAL: bool;
    /// Lower-triangular coupling coefficients; `A[s].len() == s`.
    const A: &'static [&'static [f64]];
    /// Solution weights (length `STAGES`); unused when `FSAL`.
    const B: &'static [f64];
    /// Error weights `B − B̂` (length `STAGES`).
    const E: &'static [f64];
}

/// Dormand–Prince 5(4): 7 stages, FSAL, the `ode45` workhorse. Propagates
/// the 5th-order solution; the embedded 4th-order row drives step control.
pub struct DormandPrince54;

impl RkTable for DormandPrince54 {
    const NAME: &'static str = "dormand-prince-5(4)";
    const STAGES: usize = 7;
    const ORDER: usize = 5;
    const FSAL: bool = true;
    const A: &'static [&'static [f64]] = &[
        &[],
        &[1.0 / 5.0],
        &[3.0 / 40.0, 9.0 / 40.0],
        &[44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0],
        &[
            19372.0 / 6561.0,
            -25360.0 / 2187.0,
            64448.0 / 6561.0,
            -212.0 / 729.0,
        ],
        &[
            9017.0 / 3168.0,
            -355.0 / 33.0,
            46732.0 / 5247.0,
            49.0 / 176.0,
            -5103.0 / 18656.0,
        ],
        &[
            35.0 / 384.0,
            0.0,
            500.0 / 1113.0,
            125.0 / 192.0,
            -2187.0 / 6784.0,
            11.0 / 84.0,
        ],
    ];
    const B: &'static [f64] = &[
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
        0.0,
    ];
    const E: &'static [f64] = &[
        71.0 / 57600.0,
        0.0,
        -71.0 / 16695.0,
        71.0 / 1920.0,
        -17253.0 / 339200.0,
        22.0 / 525.0,
        -1.0 / 40.0,
    ];
}

/// Cash–Karp 4(5): 6 stages, no FSAL. Kept as a second tableau behind the
/// same trait (and as the kernel's non-FSAL code-path exercise).
pub struct CashKarp45;

impl RkTable for CashKarp45 {
    const NAME: &'static str = "cash-karp-4(5)";
    const STAGES: usize = 6;
    const ORDER: usize = 5;
    const FSAL: bool = false;
    const A: &'static [&'static [f64]] = &[
        &[],
        &[1.0 / 5.0],
        &[3.0 / 40.0, 9.0 / 40.0],
        &[3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0],
        &[-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0],
        &[
            1631.0 / 55296.0,
            175.0 / 512.0,
            575.0 / 13824.0,
            44275.0 / 110592.0,
            253.0 / 4096.0,
        ],
    ];
    const B: &'static [f64] = &[
        37.0 / 378.0,
        0.0,
        250.0 / 621.0,
        125.0 / 594.0,
        0.0,
        512.0 / 1771.0,
    ];
    const E: &'static [f64] = &[
        37.0 / 378.0 - 2825.0 / 27648.0,
        0.0,
        250.0 / 621.0 - 18575.0 / 48384.0,
        125.0 / 594.0 - 13525.0 / 55296.0,
        -277.0 / 14336.0,
        512.0 / 1771.0 - 1.0 / 4.0,
    ];
}

/// Outcome of one [`integrate`] call.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveStats {
    /// Accepted steps taken over the advance.
    pub accepted: u64,
    /// Rejected (retried) step attempts.
    pub rejected: u64,
    /// Step size the controller would take next — the warm-start `dt`
    /// for the following advance.
    pub dt_next: f64,
}

const SAFETY: f64 = 0.9;
const MIN_ACCEPT_FACTOR: f64 = 0.2;
const MAX_ACCEPT_FACTOR: f64 = 10.0;

/// Integrates `y' = C⁻¹(inject − A·y)` over `duration`, adapting the step
/// from `dt_init`. All state lives in caller-provided buffers (`stages`
/// must hold at least `T::STAGES` slices of `y.len()` each); the kernel
/// allocates nothing. Panics if the controller underflows the step — for
/// this class of diagonally-dominant RC systems that indicates a broken
/// network (NaN power/conductance), not stiffness.
#[allow(clippy::too_many_arguments)]
pub(crate) fn integrate<T: RkTable>(
    ode: &OdeView<'_>,
    inject: &[f64],
    y: &mut [f64],
    duration: f64,
    dt_init: f64,
    rel_tol: f64,
    abs_tol: f64,
    stages: &mut [&mut [f64]],
    y_stage: &mut [f64],
    y_new: &mut [f64],
) -> AdaptiveStats {
    debug_assert!(stages.len() >= T::STAGES);
    let n = y.len();
    let order = T::ORDER as f64;
    let alpha = 0.7 / order;
    let beta = 0.4 / order;
    let mut dt = if dt_init.is_finite() && dt_init > 0.0 {
        dt_init.min(duration)
    } else {
        duration
    };
    let mut remaining = duration;
    let mut err_prev = 1.0f64;
    let mut k0_valid = false;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    while remaining > 0.0 {
        let clipped = dt >= remaining;
        let h = if clipped { remaining } else { dt };
        assert!(
            h.is_finite() && h > duration * 1e-14,
            "adaptive step underflow (h = {h:e} over duration {duration:e}): \
             non-finite network state?"
        );
        if !k0_valid {
            ode.derivative(inject, y, stages[0]);
            k0_valid = true;
        }
        for s in 1..T::STAGES {
            let row = T::A[s];
            let (prev, rest) = stages.split_at_mut(s);
            for i in 0..n {
                let mut acc = y[i];
                for (j, &aj) in row.iter().enumerate() {
                    if aj != 0.0 {
                        acc += h * aj * prev[j][i];
                    }
                }
                y_stage[i] = acc;
            }
            ode.derivative(inject, y_stage, rest[0]);
        }
        if T::FSAL {
            // Last A row == B: the final stage state is the 5th-order
            // solution, already in y_stage.
            y_new.copy_from_slice(y_stage);
        } else {
            for i in 0..n {
                let mut dy = 0.0;
                for (s, &bs) in T::B.iter().enumerate() {
                    if bs != 0.0 {
                        dy += bs * stages[s][i];
                    }
                }
                y_new[i] = y[i] + h * dy;
            }
        }
        let mut err_sq = 0.0;
        for i in 0..n {
            let mut de = 0.0;
            for (s, &es) in T::E.iter().enumerate() {
                if es != 0.0 {
                    de += es * stages[s][i];
                }
            }
            let sc = abs_tol + rel_tol * y[i].abs().max(y_new[i].abs());
            let ratio = h * de / sc;
            err_sq += ratio * ratio;
        }
        let err = (err_sq / n as f64).sqrt();
        if err.is_finite() && err <= 1.0 {
            accepted += 1;
            remaining = if clipped {
                0.0
            } else {
                // Absorb float-cancellation tails: a leftover below
                // 1e-12·duration is under the error floor and would
                // otherwise spawn a degenerate final step.
                let left = remaining - h;
                if left <= duration * 1e-12 {
                    0.0
                } else {
                    left
                }
            };
            y.copy_from_slice(y_new);
            if T::FSAL {
                // stages[STAGES-1] holds f(y_new): recycle it as stage 0.
                stages.swap(0, T::STAGES - 1);
            } else {
                k0_valid = false;
            }
            let e = err.max(1e-10);
            let factor = (SAFETY * e.powf(-alpha) * err_prev.powf(beta))
                .clamp(MIN_ACCEPT_FACTOR, MAX_ACCEPT_FACTOR);
            err_prev = e;
            if !clipped {
                dt = h * factor;
            }
            // On the clipped final step, keep the unclipped dt as the
            // next advance's warm start.
        } else {
            rejected += 1;
            let factor = if err.is_finite() {
                (SAFETY * err.powf(-1.0 / order)).clamp(0.1, 0.9)
            } else {
                0.1
            };
            dt = h * factor;
            // stages[0] still holds f(y): reuse it on the retry.
        }
    }
    AdaptiveStats {
        accepted,
        rejected,
        dt_next: dt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sum of each A row must equal the c node of classic tableaus;
    /// for DP54 the nodes are [0, 1/5, 3/10, 4/5, 8/9, 1, 1].
    #[test]
    fn dp54_row_sums_match_nodes() {
        let c = [0.0, 0.2, 0.3, 0.8, 8.0 / 9.0, 1.0, 1.0];
        for (s, row) in DormandPrince54::A.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - c[s]).abs() < 1e-12, "row {s}: {sum} vs {}", c[s]);
        }
        let b: f64 = DormandPrince54::B.iter().sum();
        assert!((b - 1.0).abs() < 1e-12, "B must sum to 1");
        let e: f64 = DormandPrince54::E.iter().sum();
        assert!(e.abs() < 1e-12, "E must sum to 0");
        // FSAL: last A row equals B.
        for (a, b) in DormandPrince54::A[6].iter().zip(DormandPrince54::B) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn cash_karp_row_sums_match_nodes() {
        let c = [0.0, 0.2, 0.3, 0.6, 1.0, 7.0 / 8.0];
        for (s, row) in CashKarp45::A.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - c[s]).abs() < 1e-12, "row {s}: {sum} vs {}", c[s]);
        }
        let b: f64 = CashKarp45::B.iter().sum();
        assert!((b - 1.0).abs() < 1e-12, "B must sum to 1");
        let e: f64 = CashKarp45::E.iter().sum();
        assert!(e.abs() < 1e-12, "E must sum to 0");
    }

    /// Scalar exponential decay y' = −y: both tables must track the exact
    /// solution to well within tolerance over many adapted steps.
    #[allow(clippy::type_complexity)]
    fn decay_ode() -> (Vec<usize>, Vec<usize>, Vec<f64>, Vec<f64>, Vec<f64>) {
        // One node, no edges, diag_g = 1, C = 1, inject = 0 → y' = −y.
        (vec![0, 0], vec![], vec![], vec![1.0], vec![1.0])
    }

    fn run_decay<T: RkTable>() -> (f64, AdaptiveStats) {
        let (row_ptr, col_idx, edge_g, diag_g, inv_cap) = decay_ode();
        let ode = OdeView {
            row_ptr: &row_ptr,
            col_idx: &col_idx,
            edge_g: &edge_g,
            diag_g: &diag_g,
            inv_cap: &inv_cap,
        };
        let mut y = [1.0f64];
        let mut bufs = [[0.0f64]; MAX_RK_STAGES];
        let mut it = bufs.iter_mut();
        let mut stages: Vec<&mut [f64]> = (0..MAX_RK_STAGES)
            .map(|_| &mut it.next().unwrap()[..])
            .collect();
        let mut y_stage = [0.0];
        let mut y_new = [0.0];
        let stats = integrate::<T>(
            &ode,
            &[0.0],
            &mut y,
            5.0,
            0.01,
            1e-8,
            1e-12,
            &mut stages,
            &mut y_stage,
            &mut y_new,
        );
        (y[0], stats)
    }

    #[test]
    fn dp54_tracks_exponential_decay() {
        let (y, stats) = run_decay::<DormandPrince54>();
        let exact = (-5.0f64).exp();
        assert!((y - exact).abs() < 1e-7, "y = {y}, exact = {exact}");
        assert!(stats.accepted >= 5, "too few steps: {:?}", stats);
        assert!(stats.dt_next > 0.0);
    }

    #[test]
    fn cash_karp_tracks_exponential_decay() {
        let (y, stats) = run_decay::<CashKarp45>();
        let exact = (-5.0f64).exp();
        assert!((y - exact).abs() < 1e-7, "y = {y}, exact = {exact}");
        assert!(stats.accepted >= 5);
    }

    /// A deliberately huge initial step must be rejected, then recovered
    /// from — the controller shrinks dt instead of accepting garbage.
    #[test]
    fn oversized_initial_step_is_rejected_and_recovered() {
        let (row_ptr, col_idx, edge_g, diag_g, inv_cap) = decay_ode();
        let ode = OdeView {
            row_ptr: &row_ptr,
            col_idx: &col_idx,
            edge_g: &edge_g,
            diag_g: &diag_g,
            inv_cap: &inv_cap,
        };
        let mut y = [1.0f64];
        let mut bufs = [[0.0f64]; MAX_RK_STAGES];
        let mut it = bufs.iter_mut();
        let mut stages: Vec<&mut [f64]> = (0..MAX_RK_STAGES)
            .map(|_| &mut it.next().unwrap()[..])
            .collect();
        let stats = integrate::<DormandPrince54>(
            &ode,
            &[0.0],
            &mut y,
            1000.0,
            1000.0,
            1e-10,
            1e-12,
            &mut stages,
            &mut [0.0],
            &mut [0.0],
        );
        assert!(stats.rejected >= 1, "1000 s first step should reject");
        let exact = (-1000.0f64).exp(); // ~0
        assert!((y[0] - exact).abs() < 1e-8, "y = {}", y[0]);
    }
}
