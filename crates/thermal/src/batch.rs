//! Batched stepping: advance whole fleets of identical-structure dies
//! with one propagator GEMM.
//!
//! A [`NetworkBatch`] holds N dies that share one network *structure*
//! (capacitances, conductance graph, steady-state solver) but carry
//! independent *state* (temperatures, powers, ambient). State lives in
//! contiguous node-major buffers — entry `(node, die)` at
//! `buf[node * width + die]` — so the exact stepper advances every die at
//! once with a single matrix–matrix product
//!
//! ```text
//! [T₁' T₂' … Tₙ'] = T_ss + E · ([T₁ T₂ … Tₙ] - T_ss)
//! ```
//!
//! via [`Matrix::mul_cols_into`], amortising the cached propagator
//! `E = exp(-C⁻¹A·dt)` and the build-time LU across the whole batch
//! instead of paying one matrix–vector pass per die.
//!
//! [`Stepper::Adaptive`] runs the same embedded Dormand–Prince 5(4)
//! kernel as the scalar path, one die at a time against gathered
//! per-die columns, each die carrying its own warm-start step size.
//! [`Stepper::Auto`] resolves once per advance for the whole fleet from
//! the prototype's crossover rule fed with batch-level churn counters.
//!
//! **Bit-exactness is a hard contract**: a die advanced inside a batch
//! produces bit-for-bit the temperatures of the same die advanced alone
//! through [`RcNetwork::advance`] (pinned by the `batch_agrees_with_scalar`
//! proptest). Every batch operation is either elementwise or accumulates
//! in the same order as its scalar counterpart, and the propagator/steady
//! solver and the adaptive kernel are the same code paths. This is what
//! lets the serve layer route sessions through a shard-wide batch while
//! keeping snapshots, and the campaign runner keep checkpoints,
//! byte-identical.
//!
//! **Dirty-column rule**: changing one die's power or ambient marks only
//! that die's column of the cached steady state (and injection vector)
//! dirty; the next exact step refreshes exactly the dirty columns (one
//! steady solve each). A step size change rebuilds the shared propagator
//! and re-dirties every column, mirroring the scalar cache.

use crate::floorplan::DieModel;
use crate::linalg::Matrix;
use crate::network::{NodeId, RcNetwork};
use crate::rk::{self, DormandPrince54, MAX_RK_STAGES};
use crate::sparse::CgScratch;
use crate::stepper::Stepper;

/// The shared exact propagator for one step size (one matrix for the
/// whole batch; steady states live per column in the batch itself).
#[derive(Debug, Clone)]
struct BatchExactCache {
    dt: f64,
    /// `E = exp(-C⁻¹A·dt)`, built by [`RcNetwork::propagator_matrix`].
    propagator: Matrix,
}

/// Preallocated batch stepper scratch, so batched stepping never touches
/// the heap once the propagator for the current step size is cached.
/// `k1..k4` and `tmp`/`t0` are `nodes × width` (the explicit steppers
/// sweep every die at once); `k5..k7`, `ya`, `inj` and the steady-solve
/// scratch are single columns of length `nodes` (the adaptive kernel
/// gathers one die at a time, reusing prefixes of the wide buffers for
/// its first stages).
#[derive(Debug, Clone, Default)]
struct BatchWorkspace {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    k5: Vec<f64>,
    k6: Vec<f64>,
    k7: Vec<f64>,
    tmp: Vec<f64>,
    t0: Vec<f64>,
    /// One die's gathered temperatures (adaptive integration state).
    ya: Vec<f64>,
    /// One die's gathered injection column `P_i + g_amb_i·T_amb`.
    inj: Vec<f64>,
    rhs: Vec<f64>,
    col: Vec<f64>,
    cg: CgScratch,
}

impl BatchWorkspace {
    fn new(nodes: usize, width: usize) -> Self {
        BatchWorkspace {
            k1: vec![0.0; nodes * width],
            k2: vec![0.0; nodes * width],
            k3: vec![0.0; nodes * width],
            k4: vec![0.0; nodes * width],
            k5: vec![0.0; nodes],
            k6: vec![0.0; nodes],
            k7: vec![0.0; nodes],
            tmp: vec![0.0; nodes * width],
            t0: vec![0.0; nodes * width],
            ya: vec![0.0; nodes],
            inj: vec![0.0; nodes],
            rhs: vec![0.0; nodes],
            col: vec![0.0; nodes],
            cg: CgScratch::with_len(nodes),
        }
    }
}

/// N same-structure dies advanced together; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct NetworkBatch {
    /// Prototype network carrying the shared structure (CSR graph,
    /// capacitances, steady-state solver). Its own state vectors are
    /// unused.
    proto: RcNetwork,
    width: usize,
    nodes: usize,
    /// Node temperatures (°C), node-major: `temps[node * width + die]`.
    temps: Vec<f64>,
    /// Injected node powers (W), node-major.
    powers: Vec<f64>,
    /// Per-die ambient temperature (°C).
    ambient: Vec<f64>,
    /// Cached per-node injection `P_i + g_amb_i·T_amb`, node-major;
    /// column `d` is valid iff `inject_dirty[d]` is false.
    inject: Vec<f64>,
    /// Per-die steady-state temperatures, node-major; column `d` is valid
    /// iff `steady_dirty[d]` is false.
    t_ss: Vec<f64>,
    /// Which dies changed power/ambient since their last steady refresh.
    steady_dirty: Vec<bool>,
    /// Which dies changed power/ambient since their last inject refresh.
    inject_dirty: Vec<bool>,
    /// Per-die adaptive warm-start step size (the scalar `adaptive_dt`).
    adaptive_dt: Vec<Option<f64>>,
    exact: Option<BatchExactCache>,
    ws: BatchWorkspace,
    propagator_builds: u64,
    steady_refreshes: u64,
    adaptive_steps: u64,
    step_rejections: u64,
    /// Fleet-level churn history feeding the shared `Auto` crossover rule.
    auto_advances: u64,
    auto_dirty_advances: u64,
}

/// One O(nnz·width) CSR sweep computing dT/dt for every (node, die); the
/// per-element expression shape is identical to the scalar
/// `OdeView::derivative`, so each die's slopes match bit-for-bit.
fn batch_derivative(proto: &RcNetwork, inject: &[f64], width: usize, t: &[f64], out: &mut [f64]) {
    let n = proto.len();
    for i in 0..n {
        let diag = proto.diag_g[i];
        let inv_cap = proto.inv_capacitance[i];
        let base = i * width;
        for d in 0..width {
            let mut q = inject[base + d] - diag * t[base + d];
            for k in proto.row_ptr[i]..proto.row_ptr[i + 1] {
                q += proto.edge_g[k] * t[proto.col_idx[k] * width + d];
            }
            out[base + d] = q * inv_cap;
        }
    }
}

impl NetworkBatch {
    /// Creates a batch of `width` dies, each starting as a state clone of
    /// `proto` (its temperatures, powers and ambient are broadcast to
    /// every column).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(proto: &RcNetwork, width: usize) -> Self {
        assert!(width > 0, "batch width must be positive");
        let nodes = proto.len();
        let mut temps = vec![0.0; nodes * width];
        let mut powers = vec![0.0; nodes * width];
        for i in 0..nodes {
            temps[i * width..(i + 1) * width].fill(proto.temperatures()[i]);
            powers[i * width..(i + 1) * width].fill(proto.powers()[i]);
        }
        NetworkBatch {
            proto: proto.clone(),
            width,
            nodes,
            temps,
            powers,
            ambient: vec![proto.ambient(); width],
            inject: vec![0.0; nodes * width],
            t_ss: vec![0.0; nodes * width],
            steady_dirty: vec![true; width],
            inject_dirty: vec![true; width],
            adaptive_dt: vec![None; width],
            exact: None,
            ws: BatchWorkspace::new(nodes, width),
            propagator_builds: 0,
            steady_refreshes: 0,
            adaptive_steps: 0,
            step_rejections: 0,
            auto_advances: 0,
            auto_dirty_advances: 0,
        }
    }

    /// Number of dies in the batch.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of thermal nodes per die.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// How many times the shared propagator was (re)built — once per
    /// distinct step size seen by [`Stepper::Exact`].
    pub fn propagator_builds(&self) -> u64 {
        self.propagator_builds
    }

    /// How many per-die steady-state columns have been refreshed (one
    /// steady solve each, triggered by that die's power/ambient changes).
    pub fn steady_refreshes(&self) -> u64 {
        self.steady_refreshes
    }

    /// Accepted adaptive steps summed over all dies and advances.
    pub fn adaptive_steps(&self) -> u64 {
        self.adaptive_steps
    }

    /// Rejected (retried) adaptive step attempts summed over all dies.
    pub fn step_rejections(&self) -> u64 {
        self.step_rejections
    }

    /// What [`Stepper::Auto`] resolves to for this fleet right now, from
    /// the prototype's crossover rule and batch-level churn history.
    pub fn resolve_auto(&self) -> Stepper {
        self.proto
            .auto_choice(self.auto_advances, self.auto_dirty_advances)
    }

    /// Sets the power (W) injected into one node of one die; marks only
    /// that die's steady-state and injection columns dirty (no-op if
    /// unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn set_power(&mut self, die: usize, node: NodeId, watts: f64) {
        assert!(die < self.width, "die index out of range");
        let idx = node.index() * self.width + die;
        if self.powers[idx] != watts {
            self.powers[idx] = watts;
            self.steady_dirty[die] = true;
            self.inject_dirty[die] = true;
        }
    }

    /// Power currently injected into a node of a die (W).
    pub fn power(&self, die: usize, node: NodeId) -> f64 {
        self.powers[node.index() * self.width + die]
    }

    /// Sets one die's ambient temperature (°C); marks only that die's
    /// steady-state and injection columns dirty (no-op if unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn set_ambient(&mut self, die: usize, ambient_c: f64) {
        assert!(die < self.width, "die index out of range");
        if self.ambient[die] != ambient_c {
            self.ambient[die] = ambient_c;
            self.steady_dirty[die] = true;
            self.inject_dirty[die] = true;
        }
    }

    /// One die's ambient temperature (°C).
    pub fn ambient(&self, die: usize) -> f64 {
        self.ambient[die]
    }

    /// Current temperature (°C) of one node of one die.
    pub fn temperature(&self, die: usize, node: NodeId) -> f64 {
        self.temps[node.index() * self.width + die]
    }

    /// Copies one die's node temperatures (network node order) into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.nodes()`.
    pub fn temperatures_into(&self, die: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.nodes, "out must cover every node");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.temps[i * self.width + die];
        }
    }

    /// Overrides one die's node temperatures from a slice in network node
    /// order (e.g. restoring a checkpoint into a batch column).
    ///
    /// # Panics
    ///
    /// Panics if `temps.len() != self.nodes()`.
    pub fn set_temperatures(&mut self, die: usize, temps: &[f64]) {
        assert_eq!(temps.len(), self.nodes, "temps must cover every node");
        for (i, &t) in temps.iter().enumerate() {
            self.temps[i * self.width + die] = t;
        }
    }

    /// Refreshes the cached injection columns of every dirty die — the
    /// batched counterpart of the scalar inject refresh, same expression,
    /// so the gathered columns match the scalar buffer bit-for-bit.
    fn refresh_inject(&mut self) {
        for die in 0..self.width {
            if !self.inject_dirty[die] {
                continue;
            }
            for i in 0..self.nodes {
                self.inject[i * self.width + die] = self.powers[i * self.width + die]
                    + self.proto.ambient_conductance[i] * self.ambient[die];
            }
            self.inject_dirty[die] = false;
        }
    }

    /// Rebuilds the shared propagator if the cached one was built for a
    /// different step size; a rebuild re-dirties every steady column,
    /// mirroring the scalar cache.
    fn ensure_exact_cache(&mut self, dt: f64) {
        if self.exact.as_ref().is_some_and(|c| c.dt == dt) {
            return;
        }
        self.exact = Some(BatchExactCache {
            dt,
            propagator: self.proto.propagator_matrix(dt),
        });
        self.propagator_builds += 1;
        thermorl_telemetry::counter!("thermal.propagator_builds");
        thermorl_telemetry::event!(
            "thermal.rebuild",
            "batch propagator dt={dt} width={}",
            self.width
        );
        self.steady_dirty.fill(true);
    }

    /// Advances every die by a single step of `dt` seconds.
    ///
    /// Identical semantics to [`RcNetwork::step`] applied to each die
    /// ([`Stepper::Adaptive`] treats `dt` as a whole span and subdivides
    /// it under error control); no step allocates once the exact
    /// propagator for `dt` is cached.
    pub fn step(&mut self, dt: f64, stepper: Stepper) {
        match stepper {
            Stepper::Adaptive { rel_tol, abs_tol } => {
                return self.advance_adaptive(dt, dt, rel_tol, abs_tol);
            }
            Stepper::Auto => {
                let resolved = self.resolve_auto();
                return self.step(dt, resolved);
            }
            _ => {}
        }
        self.refresh_inject();
        let mut ws = std::mem::take(&mut self.ws);
        match stepper {
            Stepper::ForwardEuler => {
                batch_derivative(
                    &self.proto,
                    &self.inject,
                    self.width,
                    &self.temps,
                    &mut ws.k1,
                );
                for (t, d) in self.temps.iter_mut().zip(&ws.k1) {
                    *t += dt * d;
                }
            }
            Stepper::Rk4 => {
                ws.t0.copy_from_slice(&self.temps);
                batch_derivative(&self.proto, &self.inject, self.width, &ws.t0, &mut ws.k1);
                for i in 0..ws.t0.len() {
                    ws.tmp[i] = ws.t0[i] + 0.5 * dt * ws.k1[i];
                }
                batch_derivative(&self.proto, &self.inject, self.width, &ws.tmp, &mut ws.k2);
                for i in 0..ws.t0.len() {
                    ws.tmp[i] = ws.t0[i] + 0.5 * dt * ws.k2[i];
                }
                batch_derivative(&self.proto, &self.inject, self.width, &ws.tmp, &mut ws.k3);
                for i in 0..ws.t0.len() {
                    ws.tmp[i] = ws.t0[i] + dt * ws.k3[i];
                }
                batch_derivative(&self.proto, &self.inject, self.width, &ws.tmp, &mut ws.k4);
                for i in 0..ws.t0.len() {
                    self.temps[i] = ws.t0[i]
                        + dt / 6.0 * (ws.k1[i] + 2.0 * ws.k2[i] + 2.0 * ws.k3[i] + ws.k4[i]);
                }
            }
            Stepper::Exact => {
                self.ensure_exact_cache(dt);
                let cache = self.exact.take().expect("cache ensured above");
                // Refresh exactly the dirty steady-state columns: build
                // that die's rhs, one steady solve, scatter the column
                // back.
                for die in 0..self.width {
                    if !self.steady_dirty[die] {
                        continue;
                    }
                    for i in 0..self.nodes {
                        ws.rhs[i] = self.powers[i * self.width + die]
                            + self.proto.ambient_conductance[i] * self.ambient[die];
                    }
                    self.proto
                        .solve_steady_into(&ws.rhs, &mut ws.col, &mut ws.cg);
                    for i in 0..self.nodes {
                        self.t_ss[i * self.width + die] = ws.col[i];
                    }
                    self.steady_dirty[die] = false;
                    self.steady_refreshes += 1;
                    thermorl_telemetry::counter!("thermal.steady_refreshes");
                }
                // T(t+dt) = T_ss + E·(T(t) - T_ss), all dies in one GEMM.
                for i in 0..self.temps.len() {
                    ws.tmp[i] = self.temps[i] - self.t_ss[i];
                }
                cache
                    .propagator
                    .mul_cols_into(&ws.tmp, &mut ws.k1, self.width);
                for i in 0..self.temps.len() {
                    self.temps[i] = self.t_ss[i] + ws.k1[i];
                }
                self.exact = Some(cache);
            }
            Stepper::Adaptive { .. } | Stepper::Auto => unreachable!("handled above"),
        }
        self.ws = ws;
    }

    /// Advances every die by `duration` seconds under the embedded
    /// Dormand–Prince 5(4) pair — one gathered column at a time through
    /// the *same* kernel as [`RcNetwork::advance`], so each die's result
    /// is bit-identical to advancing it alone. Each die keeps its own
    /// warm-start step size.
    fn advance_adaptive(&mut self, duration: f64, dt_hint: f64, rel_tol: f64, abs_tol: f64) {
        if duration <= 0.0 {
            return;
        }
        self.refresh_inject();
        let mut ws = std::mem::take(&mut self.ws);
        let n = self.nodes;
        let ode = self.proto.ode_view();
        let mut stages: [&mut [f64]; MAX_RK_STAGES] = [
            &mut ws.k1[..n],
            &mut ws.k2[..n],
            &mut ws.k3[..n],
            &mut ws.k4[..n],
            &mut ws.k5,
            &mut ws.k6,
            &mut ws.k7,
        ];
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut dt_last = dt_hint;
        for die in 0..self.width {
            for i in 0..n {
                ws.ya[i] = self.temps[i * self.width + die];
                ws.inj[i] = self.inject[i * self.width + die];
            }
            let dt0 = self.adaptive_dt[die].unwrap_or(dt_hint);
            let stats = rk::integrate::<DormandPrince54>(
                &ode,
                &ws.inj,
                &mut ws.ya,
                duration,
                dt0,
                rel_tol,
                abs_tol,
                &mut stages,
                &mut ws.tmp[..n],
                &mut ws.t0[..n],
            );
            for i in 0..n {
                self.temps[i * self.width + die] = ws.ya[i];
            }
            self.adaptive_dt[die] = Some(stats.dt_next);
            accepted += stats.accepted;
            rejected += stats.rejected;
            dt_last = stats.dt_next;
        }
        self.adaptive_steps += accepted;
        self.step_rejections += rejected;
        thermorl_telemetry::counter!("thermal.adaptive_steps", accepted);
        thermorl_telemetry::counter!("thermal.step_rejections", rejected);
        thermorl_telemetry::gauge!("thermal.dt_current", dt_last);
        self.ws = ws;
    }

    /// Records one advance of fleet churn history and resolves `Auto` —
    /// the batched [`RcNetwork`] auto resolution, with "churned" meaning
    /// *any* die saw a power/ambient change since the last advance.
    fn resolve_auto_advance(&mut self) -> Stepper {
        self.auto_advances += 1;
        let churned = (0..self.width).any(|d| self.steady_dirty[d] && self.inject_dirty[d]);
        if churned {
            self.auto_dirty_advances += 1;
        }
        self.resolve_auto()
    }

    /// Advances every die by `duration` seconds — the batched counterpart
    /// of [`RcNetwork::advance`], with the identical sub-step splitting
    /// (so a batched die and a scalar die run the same step sequence).
    pub fn advance(&mut self, duration: f64, dt: f64, stepper: Stepper) {
        if duration <= 0.0 {
            return;
        }
        thermorl_telemetry::counter!("thermal.batch_advances");
        thermorl_telemetry::gauge!("thermal.batch_width", self.width as f64);
        let stepper = if stepper == Stepper::Auto {
            self.resolve_auto_advance()
        } else {
            stepper
        };
        if stepper == Stepper::Exact {
            self.step(duration, stepper);
            return;
        }
        if let Stepper::Adaptive { rel_tol, abs_tol } = stepper {
            // The controller subdivides the duration itself; dt is only
            // the cold-start hint.
            self.advance_adaptive(duration, dt, rel_tol, abs_tol);
            return;
        }
        let ratio = duration / dt;
        let steps = if (ratio - ratio.round()).abs() < 1e-9 {
            ratio.round() as u64
        } else {
            ratio.floor() as u64
        };
        for _ in 0..steps {
            self.step(dt, stepper);
        }
        let remainder = duration - steps as f64 * dt;
        if remainder > 1e-12 {
            self.step(remainder, stepper);
        }
    }
}

/// A batch of [`DieModel`]-shaped dies: a [`NetworkBatch`] plus the die's
/// core-node map and integration configuration, so whole fleets of
/// identical dies step together with the prototype's `sim_dt`/stepper.
///
/// This is the unit the serve supervisor batches sessions through (one
/// `DieBatch` per distinct die shape on a shard) and the runner sweeps in
/// parallel.
#[derive(Debug, Clone)]
pub struct DieBatch {
    batch: NetworkBatch,
    core_nodes: Vec<NodeId>,
    sim_dt: f64,
    stepper: Stepper,
}

impl DieBatch {
    /// Creates a batch of `width` dies, each starting as a state clone of
    /// the prototype die.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(proto: &DieModel, width: usize) -> Self {
        DieBatch {
            batch: NetworkBatch::new(proto.network(), width),
            core_nodes: proto.core_nodes().to_vec(),
            sim_dt: proto.params().sim_dt,
            stepper: proto.params().stepper,
        }
    }

    /// Number of dies in the batch.
    pub fn width(&self) -> usize {
        self.batch.width()
    }

    /// Number of cores per die.
    pub fn num_cores(&self) -> usize {
        self.core_nodes.len()
    }

    /// Number of thermal nodes per die.
    pub fn nodes(&self) -> usize {
        self.batch.nodes()
    }

    /// The underlying network batch.
    pub fn network_batch(&self) -> &NetworkBatch {
        &self.batch
    }

    /// Sets the power (W) dissipated on one core of one die.
    ///
    /// # Panics
    ///
    /// Panics if `die` or `core` is out of range.
    pub fn set_core_power(&mut self, die: usize, core: usize, watts: f64) {
        self.batch.set_power(die, self.core_nodes[core], watts);
    }

    /// Exact temperature (°C) of one core of one die.
    pub fn core_temperature(&self, die: usize, core: usize) -> f64 {
        self.batch.temperature(die, self.core_nodes[core])
    }

    /// Sets one die's ambient temperature (°C).
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn set_ambient(&mut self, die: usize, ambient_c: f64) {
        self.batch.set_ambient(die, ambient_c);
    }

    /// Loads one die's full thermal state — node temperatures (network
    /// order), per-core powers, ambient — as captured by
    /// [`DieModel::thermal_state`]; subsequent advances continue
    /// bit-identically to the checkpointed die.
    ///
    /// # Panics
    ///
    /// Panics if `temps` does not cover every node.
    pub fn load_die(&mut self, die: usize, temps: &[f64], core_powers: &[f64], ambient: f64) {
        self.batch.set_ambient(die, ambient);
        let cores = self.core_nodes.len().min(core_powers.len());
        for (core, &power) in core_powers.iter().enumerate().take(cores) {
            self.batch.set_power(die, self.core_nodes[core], power);
        }
        self.batch.set_temperatures(die, temps);
    }

    /// Copies one die's node temperatures (network node order) into `out`,
    /// the inverse of the temperature part of [`DieBatch::load_die`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.nodes()`.
    pub fn store_die(&self, die: usize, out: &mut [f64]) {
        self.batch.temperatures_into(die, out);
    }

    /// Advances every die by `duration` seconds with the prototype's
    /// configured internal step — the batched [`DieModel::advance`].
    pub fn advance(&mut self, duration: f64) {
        self.batch.advance(duration, self.sim_dt, self.stepper);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RcNetworkBuilder;

    fn two_node() -> RcNetwork {
        let mut b = RcNetworkBuilder::new(20.0);
        let core = b.add_node("core", 5.0);
        let sink = b.add_node("sink", 50.0);
        b.connect(core, sink, 2.0);
        b.connect_ambient(sink, 1.0);
        let mut net = b.build().unwrap();
        net.set_power(core, 10.0);
        net
    }

    #[test]
    fn batch_matches_scalar_bitwise_across_steppers() {
        for stepper in [
            Stepper::ForwardEuler,
            Stepper::Rk4,
            Stepper::Exact,
            Stepper::adaptive(),
        ] {
            let proto = two_node();
            let width = 5;
            let mut batch = NetworkBatch::new(&proto, width);
            let mut scalars: Vec<RcNetwork> = (0..width).map(|_| proto.clone()).collect();
            // Distinct per-die powers so columns genuinely diverge.
            for (d, scalar) in scalars.iter_mut().enumerate() {
                batch.set_power(d, NodeId(0), 2.0 * d as f64 + 1.0);
                scalar.set_power(NodeId(0), 2.0 * d as f64 + 1.0);
            }
            batch.advance(1.0, 0.25, stepper);
            for s in &mut scalars {
                s.advance(1.0, 0.25, stepper);
            }
            // A second advance after a power change exercises the dirty
            // refresh and (for adaptive) the per-die warm start.
            for (d, scalar) in scalars.iter_mut().enumerate() {
                batch.set_power(d, NodeId(0), 3.0 * d as f64 + 0.5);
                scalar.set_power(NodeId(0), 3.0 * d as f64 + 0.5);
            }
            batch.advance(1.0, 0.25, stepper);
            for s in &mut scalars {
                s.advance(1.0, 0.25, stepper);
            }
            for (d, scalar) in scalars.iter().enumerate() {
                for i in 0..proto.len() {
                    assert_eq!(
                        batch.temperature(d, NodeId(i)).to_bits(),
                        scalar.temperatures()[i].to_bits(),
                        "{stepper} die {d} node {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn dirty_column_refresh_is_per_die() {
        let proto = two_node();
        let mut batch = NetworkBatch::new(&proto, 4);
        batch.step(0.1, Stepper::Exact);
        assert_eq!(batch.propagator_builds(), 1);
        assert_eq!(batch.steady_refreshes(), 4, "all columns start dirty");

        // Unchanged: no refresh at all.
        batch.step(0.1, Stepper::Exact);
        assert_eq!(batch.steady_refreshes(), 4);

        // Touch one die: exactly one column refreshes.
        batch.set_power(2, NodeId(0), 3.0);
        batch.step(0.1, Stepper::Exact);
        assert_eq!(batch.steady_refreshes(), 5);
        assert_eq!(batch.propagator_builds(), 1);

        // New dt: propagator rebuilt, every column re-dirtied.
        batch.step(0.2, Stepper::Exact);
        assert_eq!(batch.propagator_builds(), 2);
        assert_eq!(batch.steady_refreshes(), 9);
    }

    #[test]
    fn ambient_is_per_die() {
        let proto = two_node();
        let mut batch = NetworkBatch::new(&proto, 2);
        batch.set_ambient(1, 35.0);
        batch.advance(4000.0, 1.0, Stepper::Exact);
        // Die 1 sits 15 °C above die 0 in steady state.
        let d0 = batch.temperature(0, NodeId(1));
        let d1 = batch.temperature(1, NodeId(1));
        assert!((d1 - d0 - 15.0).abs() < 1e-9, "{d0} vs {d1}");
    }

    #[test]
    fn die_batch_round_trips_die_model_state() {
        let mut donor = DieModel::quad_core();
        for c in 0..4 {
            donor.set_core_power(c, 6.0 + c as f64);
        }
        donor.advance(3.7);
        let (temps, powers, ambient) = donor.thermal_state();

        let proto = DieModel::quad_core();
        let mut batch = DieBatch::new(&proto, 3);
        batch.load_die(1, &temps, &powers, ambient);
        batch.advance(2.0);
        donor.advance(2.0);

        let mut out = vec![0.0; batch.nodes()];
        batch.store_die(1, &mut out);
        for (a, b) in out.iter().zip(donor.network().temperatures()) {
            assert_eq!(a.to_bits(), b.to_bits(), "batched die diverged");
        }
    }

    #[test]
    fn batch_adaptive_settles_and_counts_steps() {
        let proto = two_node();
        let mut batch = NetworkBatch::new(&proto, 3);
        batch.advance(500.0, 0.05, Stepper::adaptive());
        assert!(batch.adaptive_steps() >= 3, "every die takes steps");
        let ss = proto.steady_state().unwrap();
        for d in 0..3 {
            for (i, want) in ss.iter().enumerate() {
                let got = batch.temperature(d, NodeId(i));
                assert!((got - want).abs() < 0.05, "die {d} node {i}: {got}");
            }
        }
    }

    #[test]
    fn batch_auto_resolves_fleet_wide() {
        // Small dense prototype: Auto is Exact, and advancing under Auto
        // matches advancing under Exact bit-for-bit.
        let proto = two_node();
        let mut auto = NetworkBatch::new(&proto, 2);
        let mut exact = NetworkBatch::new(&proto, 2);
        assert_eq!(auto.resolve_auto(), Stepper::Exact);
        auto.advance(1.0, 0.25, Stepper::Auto);
        exact.advance(1.0, 0.25, Stepper::Exact);
        for d in 0..2 {
            for i in 0..proto.len() {
                assert_eq!(
                    auto.temperature(d, NodeId(i)).to_bits(),
                    exact.temperature(d, NodeId(i)).to_bits()
                );
            }
        }
    }
}
