//! Minimal dense linear algebra: square matrices with LU decomposition.
//!
//! The paper's related-work section notes that RC-equivalent thermal models
//! are "difficult to solve using direct mathematical techniques such as LU
//! decomposition" at scale; our compact networks are small (a handful of
//! nodes per core), so a straightforward partially-pivoted LU is both exact
//! and fast, and is used to obtain analytic steady states that validate the
//! explicit integrators.

use std::fmt;

/// A dense, row-major square matrix of `f64`.
///
/// # Example
///
/// ```
/// use thermorl_thermal::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let x = a.solve(&[2.0, 8.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

/// Error returned when a linear solve fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (a pivot underflowed) at the given column.
    Singular {
        /// Column index where elimination broke down.
        column: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    DimensionMismatch {
        /// Matrix dimension.
        expected: usize,
        /// Supplied right-hand side length.
        actual: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            SolveError::DimensionMismatch { expected, actual } => {
                write!(f, "rhs has length {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl Matrix {
    /// Creates an `n`×`n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates an identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all of length `rows.len()`.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let n = rows.len();
        let mut m = Matrix::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Matrix dimension (number of rows = columns).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Multiplies `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the math
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Solves `self * x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] if a pivot is (numerically) zero and
    /// [`SolveError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if b.len() != self.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        let lu = self.lu()?;
        Ok(lu.solve(b))
    }

    /// Computes the partially pivoted LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when elimination encounters a zero
    /// pivot.
    pub fn lu(&self) -> Result<Lu, SolveError> {
        let n = self.n;
        let mut a = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: find the largest magnitude entry in column k.
            let mut p = k;
            let mut max = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(SolveError::Singular { column: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                a[i * n + k] = factor; // store L below the diagonal
                for j in (k + 1)..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
            }
        }
        Ok(Lu { n, lu: a, perm })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// A computed LU decomposition that can solve repeatedly against new
/// right-hand sides (used for steady-state thermal solves at each power
/// assignment without refactorising).
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl Lu {
    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the decomposed dimension.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the math
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * y[j];
            }
            y[i] = acc / self.lu[i * n + i];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.25];
        assert_close(&a.solve(&b).unwrap(), &b, 1e-14);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_close(&x, &[7.0, 3.0], 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let a = Matrix::identity(3);
        assert_eq!(
            a.solve(&[1.0]),
            Err(SolveError::DimensionMismatch {
                expected: 3,
                actual: 1
            })
        );
    }

    #[test]
    fn solve_matches_mul_vec_roundtrip() {
        let a = Matrix::from_rows(&[
            &[4.0, -1.0, 0.5, 0.0],
            &[-1.0, 5.0, -1.0, 0.2],
            &[0.5, -1.0, 6.0, -2.0],
            &[0.0, 0.2, -2.0, 3.0],
        ]);
        let x_true = [1.0, -2.0, 0.5, 4.0];
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn lu_reuse_across_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = a.lu().unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -3.0]] {
            let x = lu.solve(&b);
            assert_close(&a.mul_vec(&x), &b, 1e-12);
        }
    }

    #[test]
    fn display_of_errors() {
        let s = SolveError::Singular { column: 2 }.to_string();
        assert!(s.contains("column 2"));
        let d = SolveError::DimensionMismatch {
            expected: 3,
            actual: 1,
        }
        .to_string();
        assert!(d.contains("expected 3"));
    }
}
