//! Minimal dense linear algebra: square matrices with LU decomposition.
//!
//! The paper's related-work section notes that RC-equivalent thermal models
//! are "difficult to solve using direct mathematical techniques such as LU
//! decomposition" at scale; our compact networks are small (a handful of
//! nodes per core), so a straightforward partially-pivoted LU is both exact
//! and fast, and is used to obtain analytic steady states that validate the
//! explicit integrators.

use std::fmt;

/// A dense, row-major square matrix of `f64`.
///
/// # Example
///
/// ```
/// use thermorl_thermal::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let x = a.solve(&[2.0, 8.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

/// Error returned when a linear solve fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (a pivot underflowed) at the given column.
    Singular {
        /// Column index where elimination broke down.
        column: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    DimensionMismatch {
        /// Matrix dimension.
        expected: usize,
        /// Supplied right-hand side length.
        actual: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            SolveError::DimensionMismatch { expected, actual } => {
                write!(f, "rhs has length {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl Matrix {
    /// Creates an `n`×`n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates an identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all of length `rows.len()`.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let n = rows.len();
        let mut m = Matrix::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Matrix dimension (number of rows = columns).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Multiplies `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Multiplies `self * x` into a caller-provided buffer, performing no
    /// heap allocation (the per-step hot path of [`crate::Stepper::Exact`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` have lengths other than `self.dim()`.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the math
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(out.len(), self.n);
        for i in 0..self.n {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            out[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Multiplies `self * other` (both `n`×`n`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.n);
        self.mul_into(other, &mut out);
        out
    }

    /// Multiplies `self * other` into a caller-provided matrix, performing
    /// no heap allocation (the repeated-product workhorse of
    /// [`Matrix::expm`]'s scaling-and-squaring loop, which previously
    /// churned a temporary matrix per series term).
    ///
    /// `out` may not alias `self` or `other`; the accumulation order is
    /// identical to [`Matrix::mul`], so results are bit-for-bit equal.
    ///
    /// # Panics
    ///
    /// Panics if any dimension differs.
    pub fn mul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.n, other.n, "matrix dimensions must match");
        assert_eq!(self.n, out.n, "output dimension must match");
        let n = self.n;
        out.data.fill(0.0);
        for i in 0..n {
            for k in 0..n {
                let a = self.data[i * n + k];
                if a == 0.0 {
                    continue;
                }
                let row_k = &other.data[k * n..(k + 1) * n];
                let row_out = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in row_out.iter_mut().zip(row_k) {
                    *o += a * b;
                }
            }
        }
    }

    /// Multiplies `self` against a block of `ncols` column vectors stored
    /// node-major (entry `(i, j)` of the block at `x[i * ncols + j]`),
    /// writing the product in the same layout — the column-block variant
    /// of [`Matrix::mul_vec_into`] and the GEMM kernel behind
    /// [`crate::NetworkBatch`]: one call advances a whole fleet of dies.
    ///
    /// The inner loop is tiled over columns so a register-resident
    /// accumulator strip sweeps contiguous memory in both `x` and `out`
    /// (the node-major layout is what makes the sweep contiguous), while
    /// each output element still accumulates in ascending-`k` order —
    /// column `j` of the result is bit-for-bit what [`Matrix::mul_vec_into`]
    /// produces for column `j` alone, which is what keeps batched dies
    /// bit-identical to independently stepped ones.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` have lengths other than `self.dim() * ncols`.
    pub fn mul_cols_into(&self, x: &[f64], out: &mut [f64], ncols: usize) {
        let n = self.n;
        assert_eq!(x.len(), n * ncols, "x must hold dim * ncols entries");
        assert_eq!(out.len(), n * ncols, "out must hold dim * ncols entries");
        const TILE: usize = 8;
        for i in 0..n {
            let row = &self.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + TILE <= ncols {
                let mut acc = [0.0f64; TILE];
                for (k, &a) in row.iter().enumerate() {
                    let xs = &x[k * ncols + j..k * ncols + j + TILE];
                    for (t, &b) in acc.iter_mut().zip(xs) {
                        *t += a * b;
                    }
                }
                out[i * ncols + j..i * ncols + j + TILE].copy_from_slice(&acc);
                j += TILE;
            }
            while j < ncols {
                let mut acc = 0.0;
                for (k, &a) in row.iter().enumerate() {
                    acc += a * x[k * ncols + j];
                }
                out[i * ncols + j] = acc;
                j += 1;
            }
        }
    }

    /// Returns `self` with every entry multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Matrix {
        Matrix {
            n: self.n,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Multiplies every entry by `factor` in place (no allocation).
    pub fn scale_in_place(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// The infinity norm: maximum absolute row sum.
    pub fn inf_norm(&self) -> f64 {
        (0..self.n)
            .map(|i| {
                self.data[i * self.n..(i + 1) * self.n]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// The matrix exponential `exp(self)` by scaling-and-squaring with a
    /// Taylor series on the scaled matrix.
    ///
    /// The argument is scaled by `2^-s` until its infinity norm is at most
    /// 0.5, the series is summed to machine precision (it converges in at
    /// most ~20 terms at that norm), and the result is squared `s` times.
    /// Used to build the exact one-tick propagator `E = exp(-C⁻¹G·dt)` of
    /// [`crate::RcNetwork`]; networks are small, so the O(n³) cost is paid
    /// once per distinct `dt` and amortised over millions of steps.
    pub fn expm(&self) -> Matrix {
        let n = self.n;
        let norm = self.inf_norm();
        let squarings = if norm > 0.5 {
            (norm / 0.5).log2().ceil().max(0.0) as u32
        } else {
            0
        };
        let x = self.scaled(0.5f64.powi(squarings as i32));
        let mut sum = Matrix::identity(n);
        let mut term = Matrix::identity(n);
        // One scratch matrix reused for every series term and squaring —
        // the loop itself never allocates.
        let mut scratch = Matrix::zeros(n);
        for k in 1..=40u32 {
            term.mul_into(&x, &mut scratch);
            scratch.scale_in_place(1.0 / f64::from(k));
            std::mem::swap(&mut term, &mut scratch);
            for (s, t) in sum.data.iter_mut().zip(&term.data) {
                *s += t;
            }
            if term.inf_norm() <= 1e-16 * sum.inf_norm() {
                break;
            }
        }
        for _ in 0..squarings {
            sum.mul_into(&sum, &mut scratch);
            std::mem::swap(&mut sum, &mut scratch);
        }
        sum
    }

    /// Solves `self * x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] if a pivot is (numerically) zero and
    /// [`SolveError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if b.len() != self.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        let lu = self.lu()?;
        Ok(lu.solve(b))
    }

    /// Computes the partially pivoted LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when elimination encounters a zero
    /// pivot.
    pub fn lu(&self) -> Result<Lu, SolveError> {
        let n = self.n;
        let mut a = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: find the largest magnitude entry in column k.
            let mut p = k;
            let mut max = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(SolveError::Singular { column: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                a[i * n + k] = factor; // store L below the diagonal
                for j in (k + 1)..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
            }
        }
        Ok(Lu { n, lu: a, perm })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// A computed LU decomposition that can solve repeatedly against new
/// right-hand sides (used for steady-state thermal solves at each power
/// assignment without refactorising).
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl Lu {
    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the decomposed dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-provided buffer, performing no heap
    /// allocation. `out` doubles as the substitution workspace, so `b` and
    /// `out` must be distinct slices.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `out.len()` differ from the decomposed
    /// dimension.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the math
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        assert_eq!(out.len(), self.n);
        let n = self.n;
        // Apply permutation, then forward substitution (L has unit diagonal).
        for i in 0..n {
            out[i] = b[self.perm[i]];
        }
        for i in 1..n {
            let mut acc = out[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * out[j];
            }
            out[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = out[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * out[j];
            }
            out[i] = acc / self.lu[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    /// Deterministic pseudo-random fill so GEMM tests cover dense,
    /// sign-mixed matrices without a rand dependency.
    fn lcg_fill(buf: &mut [f64], mut state: u64) {
        for v in buf.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0;
        }
    }

    #[test]
    fn mul_into_matches_mul_bitwise() {
        for n in [1, 2, 3, 5, 8, 13] {
            let mut a = Matrix::zeros(n);
            let mut b = Matrix::zeros(n);
            lcg_fill(&mut a.data, 0x9e37 + n as u64);
            lcg_fill(&mut b.data, 0x79b9 + n as u64);
            // Sprinkle exact zeros to exercise the skip branch.
            if n > 2 {
                a.data[1] = 0.0;
                a.data[n + 2] = 0.0;
            }
            let expected = a.mul(&b);
            let mut out = Matrix::zeros(n);
            a.mul_into(&b, &mut out);
            assert_eq!(expected.data, out.data, "n={n}");
            // Reuse the same output buffer: fill() must erase stale data.
            a.mul_into(&b, &mut out);
            assert_eq!(expected.data, out.data, "n={n} (reused out)");
        }
    }

    #[test]
    fn mul_cols_into_matches_mul_vec_into_per_column() {
        // Includes widths straddling the 8-wide tile boundary.
        for ncols in [1, 3, 7, 8, 9, 16, 21] {
            let n = 6;
            let mut a = Matrix::zeros(n);
            lcg_fill(&mut a.data, 0x51f0 + ncols as u64);
            let mut x = vec![0.0; n * ncols];
            lcg_fill(&mut x, 0xc0de + ncols as u64);
            let mut out = vec![1.0; n * ncols];
            a.mul_cols_into(&x, &mut out, ncols);
            let mut col = vec![0.0; n];
            let mut expect = vec![0.0; n];
            for j in 0..ncols {
                for i in 0..n {
                    col[i] = x[i * ncols + j];
                }
                a.mul_vec_into(&col, &mut expect);
                for i in 0..n {
                    assert_eq!(
                        out[i * ncols + j].to_bits(),
                        expect[i].to_bits(),
                        "ncols={ncols} col={j} row={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn scale_in_place_matches_scaled() {
        let mut a = Matrix::zeros(4);
        lcg_fill(&mut a.data, 0xabcd);
        let expected = a.scaled(-0.3125);
        a.scale_in_place(-0.3125);
        assert_eq!(expected.data, a.data);
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.25];
        assert_close(&a.solve(&b).unwrap(), &b, 1e-14);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_close(&x, &[7.0, 3.0], 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let a = Matrix::identity(3);
        assert_eq!(
            a.solve(&[1.0]),
            Err(SolveError::DimensionMismatch {
                expected: 3,
                actual: 1
            })
        );
    }

    #[test]
    fn solve_matches_mul_vec_roundtrip() {
        let a = Matrix::from_rows(&[
            &[4.0, -1.0, 0.5, 0.0],
            &[-1.0, 5.0, -1.0, 0.2],
            &[0.5, -1.0, 6.0, -2.0],
            &[0.0, 0.2, -2.0, 3.0],
        ]);
        let x_true = [1.0, -2.0, 0.5, 4.0];
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn lu_reuse_across_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = a.lu().unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -3.0]] {
            let x = lu.solve(&b);
            assert_close(&a.mul_vec(&x), &b, 1e-12);
        }
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, -1.0, 4.0], &[2.5, 0.0, 1.0]]);
        let x = [1.0, -2.0, 0.5];
        let mut out = [0.0; 3];
        a.mul_vec_into(&x, &mut out);
        assert_close(&out, &a.mul_vec(&x), 1e-15);
    }

    #[test]
    fn matrix_mul_matches_by_hand() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.mul(&b);
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 1.0);
        assert_eq!(c[(1, 0)], 4.0);
        assert_eq!(c[(1, 1)], 3.0);
    }

    #[test]
    fn inf_norm_is_max_row_sum() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.25]]);
        assert!((a.inf_norm() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let e = Matrix::zeros(3).expm();
        assert_eq!(e, Matrix::identity(3));
    }

    #[test]
    fn expm_of_diagonal_exponentiates_entries() {
        let a = Matrix::from_rows(&[&[-2.0, 0.0], &[0.0, 0.5]]);
        let e = a.expm();
        assert!((e[(0, 0)] - (-2.0f64).exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - 0.5f64.exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-14 && e[(1, 0)].abs() < 1e-14);
    }

    #[test]
    fn expm_satisfies_semigroup_property() {
        // exp(A) · exp(A) == exp(2A) for a non-diagonal stable matrix.
        let a = Matrix::from_rows(&[&[-3.0, 1.0, 0.5], &[1.0, -2.0, 0.25], &[0.5, 0.25, -4.0]]);
        let once = a.expm();
        let twice = once.mul(&once);
        let direct = a.scaled(2.0).expm();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (twice[(i, j)] - direct[(i, j)]).abs() < 1e-12,
                    "({i},{j}): {} vs {}",
                    twice[(i, j)],
                    direct[(i, j)]
                );
            }
        }
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = a.lu().unwrap();
        let b = [5.0, -3.0];
        let mut out = [0.0; 2];
        lu.solve_into(&b, &mut out);
        assert_close(&out, &lu.solve(&b), 1e-15);
    }

    #[test]
    fn display_of_errors() {
        let s = SolveError::Singular { column: 2 }.to_string();
        assert!(s.contains("column 2"));
        let d = SolveError::DimensionMismatch {
            expected: 3,
            actual: 1,
        }
        .to_string();
        assert!(d.contains("expected 3"));
    }
}
