//! On-die thermal sensor models.
//!
//! The DAC'14 controller never sees the true die temperature: it samples
//! on-board sensors, which on the paper's Intel platform report whole-degree
//! values with a little noise. [`ThermalSensor`] reproduces that measurement
//! path (offset, noise, quantisation, saturation); [`SensorBank`] holds one
//! sensor per core.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a thermal sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorParams {
    /// Quantisation step in °C (Intel digital thermal sensors report 1 °C).
    pub quantisation: f64,
    /// Half-width of the uniform measurement noise (°C).
    pub noise_amplitude: f64,
    /// Static per-sensor offset (°C), e.g. calibration error.
    pub offset: f64,
    /// Lowest reportable temperature (°C).
    pub min_reading: f64,
    /// Highest reportable temperature (°C); DTS sensors saturate at Tjmax.
    pub max_reading: f64,
}

impl Default for SensorParams {
    fn default() -> Self {
        SensorParams {
            quantisation: 1.0,
            noise_amplitude: 0.5,
            offset: 0.0,
            min_reading: 0.0,
            max_reading: 100.0,
        }
    }
}

impl SensorParams {
    /// An ideal sensor: no quantisation, noise, offset or saturation.
    /// Useful in tests that need to observe the exact model temperature.
    pub fn ideal() -> Self {
        SensorParams {
            quantisation: 0.0,
            noise_amplitude: 0.0,
            offset: 0.0,
            min_reading: f64::NEG_INFINITY,
            max_reading: f64::INFINITY,
        }
    }
}

/// A single quantised, noisy thermal sensor.
///
/// # Example
///
/// ```
/// use thermorl_thermal::{SensorParams, ThermalSensor};
///
/// let mut s = ThermalSensor::new(SensorParams::default(), 42);
/// let reading = s.read(54.37);
/// assert!((reading - 54.37).abs() <= 1.5); // within noise + quantisation
/// assert_eq!(reading, reading.round());    // whole degrees
/// ```
#[derive(Debug, Clone)]
pub struct ThermalSensor {
    params: SensorParams,
    rng: StdRng,
}

impl ThermalSensor {
    /// Creates a sensor with its own deterministic noise stream.
    pub fn new(params: SensorParams, seed: u64) -> Self {
        ThermalSensor {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The sensor's configuration.
    pub fn params(&self) -> &SensorParams {
        &self.params
    }

    /// Raw state of the noise RNG, for checkpointing a live sensor.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Resumes the noise stream from a [`ThermalSensor::rng_state`]
    /// value, so subsequent readings match the checkpointed sensor's.
    pub fn restore_rng_state(&mut self, state: u64) {
        self.rng = StdRng::from_state(state);
    }

    /// Produces a reading for true temperature `actual_c` (°C).
    pub fn read(&mut self, actual_c: f64) -> f64 {
        let noise = if self.params.noise_amplitude > 0.0 {
            self.rng
                .gen_range(-self.params.noise_amplitude..=self.params.noise_amplitude)
        } else {
            0.0
        };
        let raw = actual_c + self.params.offset + noise;
        let quantised = if self.params.quantisation > 0.0 {
            (raw / self.params.quantisation).round() * self.params.quantisation
        } else {
            raw
        };
        quantised.clamp(self.params.min_reading, self.params.max_reading)
    }
}

/// One sensor per core, with independent noise streams.
#[derive(Debug, Clone)]
pub struct SensorBank {
    sensors: Vec<ThermalSensor>,
}

impl SensorBank {
    /// Creates `n` sensors sharing `params`, seeded from `seed`.
    pub fn new(n: usize, params: SensorParams, seed: u64) -> Self {
        SensorBank {
            sensors: (0..n)
                .map(|i| ThermalSensor::new(params, seed.wrapping_add(i as u64 * 0x9E37_79B9)))
                .collect(),
        }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// Raw noise-RNG states of every sensor, for checkpointing.
    pub fn rng_states(&self) -> Vec<u64> {
        self.sensors.iter().map(ThermalSensor::rng_state).collect()
    }

    /// Resumes every sensor's noise stream from
    /// [`SensorBank::rng_states`] output. States beyond the bank's size
    /// are ignored; missing states leave those sensors untouched.
    pub fn restore_rng_states(&mut self, states: &[u64]) {
        for (sensor, &state) in self.sensors.iter_mut().zip(states) {
            sensor.restore_rng_state(state);
        }
    }

    /// Reads all sensors against the provided true temperatures.
    ///
    /// # Panics
    ///
    /// Panics if `actual.len() != self.len()`.
    pub fn read_all(&mut self, actual: &[f64]) -> Vec<f64> {
        assert_eq!(actual.len(), self.sensors.len());
        self.sensors
            .iter_mut()
            .zip(actual)
            .map(|(s, &t)| s.read(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_is_exact() {
        let mut s = ThermalSensor::new(SensorParams::ideal(), 1);
        assert_eq!(s.read(53.217), 53.217);
    }

    #[test]
    fn default_sensor_quantises_to_whole_degrees() {
        let mut s = ThermalSensor::new(SensorParams::default(), 7);
        for t in [30.2, 45.7, 61.123] {
            let r = s.read(t);
            assert_eq!(r, r.round());
        }
    }

    #[test]
    fn reading_stays_within_error_bound() {
        let mut s = ThermalSensor::new(SensorParams::default(), 99);
        for i in 0..1000 {
            let t = 30.0 + (i as f64) * 0.05;
            let r = s.read(t);
            // noise 0.5 + quantisation 0.5 rounding error
            assert!((r - t).abs() <= 1.0 + 1e-9, "reading {r} for {t}");
        }
    }

    #[test]
    fn sensor_saturates_at_limits() {
        let mut s = ThermalSensor::new(SensorParams::default(), 3);
        assert_eq!(s.read(250.0), 100.0);
        assert_eq!(s.read(-40.0), 0.0);
    }

    #[test]
    fn offset_shifts_readings() {
        let params = SensorParams {
            offset: 3.0,
            noise_amplitude: 0.0,
            quantisation: 0.0,
            ..SensorParams::default()
        };
        let mut s = ThermalSensor::new(params, 0);
        assert!((s.read(50.0) - 53.0).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_readings() {
        let mut a = ThermalSensor::new(SensorParams::default(), 1234);
        let mut b = ThermalSensor::new(SensorParams::default(), 1234);
        for i in 0..100 {
            let t = 40.0 + i as f64 * 0.3;
            assert_eq!(a.read(t), b.read(t));
        }
    }

    #[test]
    fn bank_sensors_have_independent_noise() {
        let mut bank = SensorBank::new(4, SensorParams::default(), 5);
        // Across enough samples the four streams cannot be identical.
        let mut all_identical = true;
        for i in 0..50 {
            let t = 47.3 + (i as f64) * 0.11;
            let r = bank.read_all(&[t, t, t, t]);
            if r.windows(2).any(|w| w[0] != w[1]) {
                all_identical = false;
            }
        }
        assert!(!all_identical, "sensor noise streams are correlated");
    }

    #[test]
    fn rng_state_round_trip_resumes_noise_stream() {
        let mut donor = SensorBank::new(4, SensorParams::default(), 77);
        let _ = donor.read_all(&[45.0; 4]);
        let _ = donor.read_all(&[46.0; 4]);
        let states = donor.rng_states();

        // A bank built from a different seed, restored mid-stream.
        let mut twin = SensorBank::new(4, SensorParams::default(), 0);
        twin.restore_rng_states(&states);
        for i in 0..50 {
            let t = 44.0 + i as f64 * 0.2;
            assert_eq!(donor.read_all(&[t; 4]), twin.read_all(&[t; 4]));
        }
    }

    #[test]
    fn bank_len_and_empty() {
        let bank = SensorBank::new(4, SensorParams::ideal(), 0);
        assert_eq!(bank.len(), 4);
        assert!(!bank.is_empty());
        assert!(SensorBank::new(0, SensorParams::ideal(), 0).is_empty());
    }
}
