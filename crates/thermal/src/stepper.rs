//! Time integrators for RC networks.

use serde::{Deserialize, Serialize};

/// Integration scheme for [`crate::RcNetwork::step`].
///
/// `Exact` is the default used by the co-simulation: power is piecewise
/// constant between simulation ticks, so one application of the cached
/// propagator `E = exp(-C⁻¹G·dt)` advances a full tick with no
/// discretisation error at any `dt`. Forward Euler and RK4 remain
/// available for time-varying power *within* a step (where the
/// piecewise-constant assumption breaks) and as independent references
/// the property tests validate `Exact` against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Stepper {
    /// First-order explicit Euler: cheap, stable for `dt < max_stable_dt`.
    ForwardEuler,
    /// Classic fourth-order Runge–Kutta.
    Rk4,
    /// Exact matrix-exponential step (piecewise-constant power), one
    /// matrix-vector product per step with a propagator cached per `dt`.
    #[default]
    Exact,
}

impl std::fmt::Display for Stepper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stepper::ForwardEuler => write!(f, "forward-euler"),
            Stepper::Rk4 => write!(f, "rk4"),
            Stepper::Exact => write!(f, "exact"),
        }
    }
}

impl std::str::FromStr for Stepper {
    type Err = String;

    /// Parses the [`std::fmt::Display`] names (`"euler"` is accepted as an
    /// alias for `"forward-euler"`), as used by JSON configs and the bench
    /// binaries' `--stepper` flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "forward-euler" | "euler" => Ok(Stepper::ForwardEuler),
            "rk4" => Ok(Stepper::Rk4),
            "exact" => Ok(Stepper::Exact),
            other => Err(format!(
                "unknown stepper {other:?} (expected exact, rk4 or forward-euler)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_exact() {
        assert_eq!(Stepper::default(), Stepper::Exact);
    }

    #[test]
    fn display_names() {
        assert_eq!(Stepper::ForwardEuler.to_string(), "forward-euler");
        assert_eq!(Stepper::Rk4.to_string(), "rk4");
        assert_eq!(Stepper::Exact.to_string(), "exact");
    }

    #[test]
    fn from_str_round_trips_display_names() {
        for s in [Stepper::ForwardEuler, Stepper::Rk4, Stepper::Exact] {
            assert_eq!(s.to_string().parse::<Stepper>(), Ok(s));
        }
        assert_eq!("euler".parse::<Stepper>(), Ok(Stepper::ForwardEuler));
        assert!("leapfrog".parse::<Stepper>().is_err());
    }
}
