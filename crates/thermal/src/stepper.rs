//! Time integrators for RC networks.

use serde::{Deserialize, Serialize};

/// Integration scheme for [`crate::RcNetwork::step`].
///
/// `Exact` is the default used by the co-simulation: power is piecewise
/// constant between simulation ticks, so one application of the cached
/// propagator `E = exp(-C⁻¹G·dt)` advances a full tick with no
/// discretisation error at any `dt`. Forward Euler and RK4 remain
/// available for time-varying power *within* a step (where the
/// piecewise-constant assumption breaks) and as independent references
/// the property tests validate `Exact` against.
///
/// `Adaptive` is the large-floorplan path: an embedded Dormand–Prince
/// 5(4) pair with per-node error control and a PI step-size controller
/// advances via sparse CSR matvecs only (O(nnz) per stage), so dies too
/// large to densify `expm`/LU still step. `Auto` picks between the two
/// per advance from node count and power-churn rate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Stepper {
    /// First-order explicit Euler: cheap, stable for `dt < max_stable_dt`.
    ForwardEuler,
    /// Classic fourth-order Runge–Kutta.
    Rk4,
    /// Exact matrix-exponential step (piecewise-constant power), one
    /// matrix-vector product per step with a propagator cached per `dt`.
    #[default]
    Exact,
    /// Embedded adaptive Runge–Kutta (Dormand–Prince 5(4)) with
    /// tolerance-driven step control over the sparse matrix-free path.
    /// Tolerances must be finite and positive (see [`Stepper::adaptive`]).
    Adaptive {
        /// Per-node relative error tolerance.
        rel_tol: f64,
        /// Per-node absolute error tolerance, in °C.
        abs_tol: f64,
    },
    /// Crossover heuristic: exact propagator on small/quiet dies,
    /// adaptive-sparse on large or churn-heavy ones, resolved per advance.
    Auto,
}

// Tolerances are validated finite (never NaN) at every construction site:
// `Stepper::adaptive()` uses constants, `FromStr` and `DieParams::validate`
// reject non-finite values. With NaN excluded, `PartialEq` is total.
impl Eq for Stepper {}

impl std::hash::Hash for Stepper {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        if let Stepper::Adaptive { rel_tol, abs_tol } = self {
            rel_tol.to_bits().hash(state);
            abs_tol.to_bits().hash(state);
        }
    }
}

impl Stepper {
    /// Default relative tolerance for [`Stepper::Adaptive`].
    pub const DEFAULT_REL_TOL: f64 = 1e-6;
    /// Default absolute tolerance (°C) for [`Stepper::Adaptive`].
    pub const DEFAULT_ABS_TOL: f64 = 1e-9;

    /// An adaptive stepper at the default tolerances.
    pub const fn adaptive() -> Stepper {
        Stepper::Adaptive {
            rel_tol: Stepper::DEFAULT_REL_TOL,
            abs_tol: Stepper::DEFAULT_ABS_TOL,
        }
    }
}

impl std::fmt::Display for Stepper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stepper::ForwardEuler => write!(f, "forward-euler"),
            Stepper::Rk4 => write!(f, "rk4"),
            Stepper::Exact => write!(f, "exact"),
            Stepper::Adaptive { rel_tol, abs_tol } => {
                write!(f, "adaptive:{rel_tol:e}:{abs_tol:e}")
            }
            Stepper::Auto => write!(f, "auto"),
        }
    }
}

/// Parses one tolerance field of an `adaptive:REL:ABS` spec.
fn parse_tol(spec: &str, field: &str, raw: &str) -> Result<f64, String> {
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("bad {field} tolerance {raw:?} in stepper {spec:?}"))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!(
            "{field} tolerance in stepper {spec:?} must be finite and positive"
        ));
    }
    Ok(v)
}

impl std::str::FromStr for Stepper {
    type Err = String;

    /// Parses the [`std::fmt::Display`] names (`"euler"` is accepted as an
    /// alias for `"forward-euler"`; bare `"adaptive"` uses the default
    /// tolerances), as used by JSON configs and the bench binaries'
    /// `--stepper` flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "forward-euler" | "euler" => Ok(Stepper::ForwardEuler),
            "rk4" => Ok(Stepper::Rk4),
            "exact" => Ok(Stepper::Exact),
            "adaptive" => Ok(Stepper::adaptive()),
            "auto" => Ok(Stepper::Auto),
            other => {
                if let Some(rest) = other.strip_prefix("adaptive:") {
                    let mut parts = rest.splitn(2, ':');
                    let rel = parts.next().unwrap_or("");
                    let abs = parts
                        .next()
                        .ok_or_else(|| format!("stepper {other:?} needs adaptive:REL:ABS"))?;
                    return Ok(Stepper::Adaptive {
                        rel_tol: parse_tol(other, "relative", rel)?,
                        abs_tol: parse_tol(other, "absolute", abs)?,
                    });
                }
                Err(format!(
                    "unknown stepper {other:?} (expected exact, rk4, forward-euler, \
                     adaptive[:REL:ABS] or auto)"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_exact() {
        assert_eq!(Stepper::default(), Stepper::Exact);
    }

    #[test]
    fn display_names() {
        assert_eq!(Stepper::ForwardEuler.to_string(), "forward-euler");
        assert_eq!(Stepper::Rk4.to_string(), "rk4");
        assert_eq!(Stepper::Exact.to_string(), "exact");
        assert_eq!(Stepper::adaptive().to_string(), "adaptive:1e-6:1e-9");
        assert_eq!(Stepper::Auto.to_string(), "auto");
    }

    #[test]
    fn from_str_round_trips_display_names() {
        for s in [
            Stepper::ForwardEuler,
            Stepper::Rk4,
            Stepper::Exact,
            Stepper::adaptive(),
            Stepper::Adaptive {
                rel_tol: 3.5e-7,
                abs_tol: 1e-10,
            },
            Stepper::Auto,
        ] {
            assert_eq!(s.to_string().parse::<Stepper>(), Ok(s));
        }
        assert_eq!("euler".parse::<Stepper>(), Ok(Stepper::ForwardEuler));
        assert_eq!("adaptive".parse::<Stepper>(), Ok(Stepper::adaptive()));
        assert!("leapfrog".parse::<Stepper>().is_err());
    }

    #[test]
    fn adaptive_parse_rejects_bad_tolerances() {
        assert!("adaptive:0:1e-9".parse::<Stepper>().is_err());
        assert!("adaptive:-1e-6:1e-9".parse::<Stepper>().is_err());
        assert!("adaptive:1e-6:nan".parse::<Stepper>().is_err());
        assert!("adaptive:1e-6".parse::<Stepper>().is_err());
        assert!("adaptive:inf:1e-9".parse::<Stepper>().is_err());
    }

    #[test]
    fn adaptive_hash_distinguishes_tolerances() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: Stepper| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(
            h(Stepper::adaptive()),
            h(Stepper::Adaptive {
                rel_tol: 1e-3,
                abs_tol: 1e-9
            })
        );
        assert_eq!(h(Stepper::adaptive()), h(Stepper::adaptive()));
    }
}
