//! Explicit time integrators for RC networks.

use serde::{Deserialize, Serialize};

/// Explicit integration scheme for [`crate::RcNetwork::step`].
///
/// Forward Euler is the default used by the co-simulation (the networks are
/// tiny and the simulation step of 10 ms is far below the stability bound);
/// RK4 is available for accuracy checks and larger steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Stepper {
    /// First-order explicit Euler: cheap, stable for `dt < max_stable_dt`.
    #[default]
    ForwardEuler,
    /// Classic fourth-order Runge–Kutta.
    Rk4,
}

impl std::fmt::Display for Stepper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stepper::ForwardEuler => write!(f, "forward-euler"),
            Stepper::Rk4 => write!(f, "rk4"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_euler() {
        assert_eq!(Stepper::default(), Stepper::ForwardEuler);
    }

    #[test]
    fn display_names() {
        assert_eq!(Stepper::ForwardEuler.to_string(), "forward-euler");
        assert_eq!(Stepper::Rk4.to_string(), "rk4");
    }
}
