//! Matrix-free kernels over the CSR conductance graph.
//!
//! Everything a large floorplan needs to step and settle without ever
//! densifying the system matrix: a borrowed [`OdeView`] exposing the
//! thermal ODE derivative and the steady-state operator as O(nnz)
//! matvecs, and a Jacobi-preconditioned conjugate-gradient solve for
//! `A·T_ss = b` where `A = diag(g) − G_offdiag` is the symmetric
//! positive-definite conductance matrix (ambient links make it strictly
//! diagonally dominant, hence SPD).

/// Relative residual tolerance for the steady-state CG solve. Tight
/// enough that the matrix-free steady state matches the dense LU one to
/// round-off at the temperatures this model produces.
pub(crate) const CG_REL_TOL: f64 = 1e-12;

/// Borrowed view of an [`crate::RcNetwork`]'s CSR structure plus the
/// precomputed `1/C` vector, shared by the scalar and batched adaptive
/// steppers so both run the *same* kernel on the same bytes.
pub(crate) struct OdeView<'a> {
    pub row_ptr: &'a [usize],
    pub col_idx: &'a [usize],
    pub edge_g: &'a [f64],
    pub diag_g: &'a [f64],
    pub inv_cap: &'a [f64],
}

impl OdeView<'_> {
    /// Node count.
    pub fn len(&self) -> usize {
        self.diag_g.len()
    }

    /// `out = C⁻¹(inject − A·t)` where `inject[i] = P_i + g_amb_i·T_amb`
    /// is refreshed only when power or ambient change, not per stage.
    pub fn derivative(&self, inject: &[f64], t: &[f64], out: &mut [f64]) {
        for i in 0..self.len() {
            let mut q = inject[i] - self.diag_g[i] * t[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                q += self.edge_g[k] * t[self.col_idx[k]];
            }
            out[i] = q * self.inv_cap[i];
        }
    }

    /// `out = A·x` for the steady-state system `A·T_ss = b`.
    pub fn steady_matvec(&self, x: &[f64], out: &mut [f64]) {
        for i in 0..self.len() {
            let mut q = self.diag_g[i] * x[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                q -= self.edge_g[k] * x[self.col_idx[k]];
            }
            out[i] = q;
        }
    }
}

/// Preallocated scratch for [`cg_solve`]; lives in the network
/// [`crate::RcNetwork`] workspace so steady solves allocate nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct CgScratch {
    pub r: Vec<f64>,
    pub z: Vec<f64>,
    pub p: Vec<f64>,
    pub ap: Vec<f64>,
}

impl CgScratch {
    pub fn with_len(n: usize) -> Self {
        CgScratch {
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Jacobi-preconditioned conjugate gradient on `A·x = b`, starting from
/// `x = 0`. Converges on the infinity-norm residual relative to `b`;
/// returns the iteration count (for the `thermal.cg_iterations` counter).
pub(crate) fn cg_solve(
    ode: &OdeView<'_>,
    b: &[f64],
    x: &mut [f64],
    s: &mut CgScratch,
    rel_tol: f64,
) -> u64 {
    let n = ode.len();
    x.fill(0.0);
    let bnorm = b.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if bnorm == 0.0 {
        return 0;
    }
    let tol = rel_tol * bnorm;
    s.r.copy_from_slice(b);
    for i in 0..n {
        s.z[i] = s.r[i] / ode.diag_g[i];
    }
    s.p.copy_from_slice(&s.z);
    let mut rz = dot(&s.r, &s.z);
    let max_iter = 20 * n as u64 + 100;
    for iter in 1..=max_iter {
        ode.steady_matvec(&s.p, &mut s.ap);
        let pap = dot(&s.p, &s.ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Numerical breakdown: A is SPD by construction, so this only
            // happens at round-off level — x already holds the best iterate.
            return iter;
        }
        let alpha = rz / pap;
        let mut rmax = 0.0f64;
        for (((xi, ri), &pi), &api) in x.iter_mut().zip(s.r.iter_mut()).zip(&s.p).zip(&s.ap) {
            *xi += alpha * pi;
            *ri -= alpha * api;
            rmax = rmax.max(ri.abs());
        }
        if rmax <= tol {
            return iter;
        }
        for i in 0..n {
            s.z[i] = s.r[i] / ode.diag_g[i];
        }
        let rz_new = dot(&s.r, &s.z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            s.p[i] = s.z[i] + beta * s.p[i];
        }
    }
    max_iter
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Owned CSR pieces: (row_ptr, col_idx, edge_g, diag_g, inv_cap).
    type OwnedCsr = (Vec<usize>, Vec<usize>, Vec<f64>, Vec<f64>, Vec<f64>);

    /// A 3-node chain with ambient links on every node.
    fn chain() -> OwnedCsr {
        // edges: 0-1 (g=2), 1-2 (g=3); ambient g = [1, 0.5, 0.25]
        let row_ptr = vec![0, 1, 3, 4];
        let col_idx = vec![1, 0, 2, 1];
        let edge_g = vec![2.0, 2.0, 3.0, 3.0];
        let diag_g = vec![1.0 + 2.0, 0.5 + 2.0 + 3.0, 0.25 + 3.0];
        let inv_cap = vec![1.0, 1.0, 1.0];
        (row_ptr, col_idx, edge_g, diag_g, inv_cap)
    }

    #[test]
    fn cg_solves_the_chain_to_high_accuracy() {
        let (row_ptr, col_idx, edge_g, diag_g, inv_cap) = chain();
        let ode = OdeView {
            row_ptr: &row_ptr,
            col_idx: &col_idx,
            edge_g: &edge_g,
            diag_g: &diag_g,
            inv_cap: &inv_cap,
        };
        let b = vec![7.0, -2.0, 4.5];
        let mut x = vec![0.0; 3];
        let mut s = CgScratch::with_len(3);
        let iters = cg_solve(&ode, &b, &mut x, &mut s, 1e-13);
        assert!((1..=60).contains(&iters), "iters = {iters}");
        let mut ax = vec![0.0; 3];
        ode.steady_matvec(&x, &mut ax);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-10, "residual too large");
        }
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let (row_ptr, col_idx, edge_g, diag_g, inv_cap) = chain();
        let ode = OdeView {
            row_ptr: &row_ptr,
            col_idx: &col_idx,
            edge_g: &edge_g,
            diag_g: &diag_g,
            inv_cap: &inv_cap,
        };
        let mut x = vec![9.0; 3];
        let mut s = CgScratch::with_len(3);
        assert_eq!(cg_solve(&ode, &[0.0; 3], &mut x, &mut s, 1e-12), 0);
        assert_eq!(x, vec![0.0; 3]);
    }
}
