//! Property-based integration tests: the full stack stays physical under
//! randomly generated workloads and controller behaviours.

use proptest::prelude::*;

use thermorl::platform::GovernorKind;
use thermorl::prelude::*;
use thermorl::sim::{Actuation, NullController, Observation, ThermalController};
use thermorl::workload::SyncModel;

fn arb_app() -> impl Strategy<Value = AppModel> {
    (
        2usize..8,    // threads
        10usize..60,  // frames
        0.2f64..4.0,  // parallel gcycles
        0.0f64..1.5,  // serial gcycles
        0.3f64..1.0,  // parallel activity
        0.05f64..0.5, // serial activity
        0.0f64..0.3,  // jitter
        prop_oneof![Just(SyncModel::Barrier), Just(SyncModel::WorkQueue)],
    )
        .prop_map(|(threads, frames, par, ser, ah, al, jitter, sync)| {
            AppModel::builder("prop")
                .threads(threads)
                .frames(frames)
                .parallel_gcycles(par)
                .serial_gcycles(ser)
                .activities(ah, al)
                .jitter(jitter)
                .sync(sync)
                .build()
                .expect("generated model is valid")
        })
}

/// A controller that issues a random governor at every sample — an
/// adversarial actuator for engine robustness.
struct Chaos {
    seq: u64,
}

impl ThermalController for Chaos {
    fn name(&self) -> &str {
        "chaos"
    }
    fn sampling_interval(&self) -> f64 {
        2.0
    }
    fn on_sample(&mut self, _obs: &Observation<'_>) -> Option<Actuation> {
        self.seq = self.seq.wrapping_mul(6364136223846793005).wrapping_add(1);
        let pick = (self.seq >> 33) % 6;
        let governor = match pick {
            0 => GovernorKind::Ondemand,
            1 => GovernorKind::Conservative,
            2 => GovernorKind::Performance,
            3 => GovernorKind::Powersave,
            n => GovernorKind::Userspace((n % 6) as usize),
        };
        Some(Actuation {
            assignment: None,
            governor: Some(governor),
            per_core_governors: None,
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated app completes under the Linux baseline, with sane
    /// physics: temperatures bounded, energy positive, all frames done.
    #[test]
    fn random_apps_complete_sanely(app in arb_app(), seed in 0u64..1000) {
        let config = SimConfig { max_sim_time: 3600.0, ..SimConfig::default() };
        let out = run_app(&app, Box::new(NullController::default()), &config, seed);
        prop_assert!(out.completed, "{} frames left", app.total_frames);
        prop_assert_eq!(out.app_results[0].frames_completed, app.total_frames);
        prop_assert!(out.avg_temperature() >= 20.0);
        prop_assert!(out.peak_temperature() <= 100.0, "sensor saturates at 100");
        prop_assert!(out.dynamic_energy_j >= 0.0);
        prop_assert!(out.static_energy_j > 0.0);
    }

    /// A chaotic governor-flipping controller cannot break the engine or
    /// physics, only change performance.
    #[test]
    fn chaos_controller_is_survivable(app in arb_app(), seed in 0u64..1000) {
        let config = SimConfig { max_sim_time: 3600.0, ..SimConfig::default() };
        let out = run_app(&app, Box::new(Chaos { seq: seed }), &config, seed);
        prop_assert!(out.completed);
        prop_assert!(out.peak_temperature() <= 100.0);
        // Tiny apps can finish before the first 2 s sample fires.
        if out.total_time > 5.0 {
            prop_assert!(out.decisions > 0);
        }
    }

    /// The proposed controller never violates engine invariants on random
    /// workloads (short horizon to keep the suite fast).
    #[test]
    fn proposed_controller_is_robust(app in arb_app(), seed in 0u64..50) {
        let config = SimConfig { max_sim_time: 600.0, ..SimConfig::default() };
        let cfg = ControlConfig { epoch_samples: 4, ..ControlConfig::default() };
        let out = run_app(
            &app,
            Box::new(DasDac14Controller::new(cfg, seed)),
            &config,
            seed,
        );
        prop_assert!(out.total_time > 0.0);
        prop_assert!(out.samples >= out.decisions);
        // Reliability analysis never panics or yields negative lifetimes.
        for r in out.reliability_reports() {
            prop_assert!(r.mttf_aging_years > 0.0);
            prop_assert!(r.mttf_cycling_years > 0.0);
            prop_assert!(r.stress >= 0.0);
        }
    }

    /// Higher fixed frequency never slows an app down (monotone progress).
    #[test]
    fn frequency_monotonicity(app in arb_app(), seed in 0u64..100) {
        use thermorl::baselines::FixedPolicy;
        let config = SimConfig { max_sim_time: 3600.0, ..SimConfig::default() };
        let slow = run_app(&app, Box::new(FixedPolicy::userspace("lo", 0)), &config, seed);
        let fast = run_app(&app, Box::new(FixedPolicy::userspace("hi", 5)), &config, seed);
        prop_assert!(slow.completed && fast.completed);
        prop_assert!(
            fast.total_time <= slow.total_time * 1.05,
            "fast {} vs slow {}",
            fast.total_time,
            slow.total_time
        );
    }
}
