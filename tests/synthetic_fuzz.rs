//! Fuzz-style integration sweep: the full stack survives a population of
//! generated workloads under every policy class, deterministically.

use thermorl::baselines::{GeConfig, GeQiu2011Controller};
use thermorl::control::DasDac14Controller;
use thermorl::prelude::*;
use thermorl::sim::{NullController, ThermalController};
use thermorl::workload::SyntheticGenerator;

fn policies(seed: u64) -> Vec<Box<dyn ThermalController>> {
    vec![
        Box::new(NullController::default()),
        Box::new(GeQiu2011Controller::new(GeConfig::default(), seed)),
        Box::new(DasDac14Controller::new(ControlConfig::default(), seed)),
    ]
}

#[test]
fn generated_population_runs_under_all_policies() {
    let mut generator = SyntheticGenerator::new(2026);
    let apps = generator.apps(6);
    let config = SimConfig {
        max_sim_time: 900.0,
        ..SimConfig::default()
    };
    for (i, app) in apps.iter().enumerate() {
        for controller in policies(i as u64) {
            let label = controller.name().to_string();
            let out = run_app(app, controller, &config, i as u64);
            // Physics invariants hold for every (app, policy) pair.
            assert!(
                out.peak_temperature() <= 100.0,
                "{label} on {} overheated",
                app.name
            );
            assert!(out.avg_temperature() >= 20.0);
            assert!(out.dynamic_energy_j >= 0.0);
            assert!(out.static_energy_j > 0.0);
            for r in out.reliability_reports() {
                assert!(r.mttf_aging_years > 0.0);
                assert!(r.mttf_cycling_years > 0.0);
            }
        }
    }
}

#[test]
fn generated_scenarios_chain_correctly() {
    // Scenarios need uniform thread counts; force one via the space.
    let space = thermorl::workload::SyntheticSpace {
        threads: (4, 4),
        frames: (20, 80),
        ..thermorl::workload::SyntheticSpace::default()
    };
    let mut g = SyntheticGenerator::with_space(space, 7);
    let apps = g.apps(3);
    let scenario = Scenario::new(apps);
    let config = SimConfig {
        max_sim_time: 2400.0,
        ..SimConfig::default()
    };
    let out = run_scenario(
        &scenario,
        Box::new(DasDac14Controller::new(ControlConfig::default(), 7)),
        &config,
        7,
    );
    assert!(out.completed, "all three generated apps must finish");
    assert_eq!(out.app_results.len(), 3);
    // App boundaries are ordered.
    for w in out.app_results.windows(2) {
        assert!(w[1].start_time >= w[0].finish_time.expect("finished") - 1e-6);
    }
}
