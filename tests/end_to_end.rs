//! Cross-crate integration tests: the full thermal/platform/workload/
//! controller stack behaving as the paper describes.

use thermorl::baselines::{FixedPolicy, GeConfig, GeQiu2011Controller};
use thermorl::control::DasDac14Controller;
use thermorl::prelude::*;
use thermorl::sim::NullController;
use thermorl::workload::SyncModel;

/// A fast cycling-heavy workload for controller tests (completes in a few
/// hundred simulated seconds).
fn cycling_app() -> AppModel {
    AppModel::builder("cycler")
        .threads(6)
        .frames(400)
        .parallel_gcycles(0.8)
        .serial_gcycles(0.9)
        .activities(0.55, 0.3)
        .jitter(0.05)
        .modulation(0.6, 12)
        .modulate_activity(true)
        .perf_constraint_fps(0.5)
        .build()
        .expect("valid model")
}

/// A fast hot workload.
fn hot_app() -> AppModel {
    AppModel::builder("heater")
        .threads(6)
        .frames(300)
        .parallel_gcycles(8.0)
        .serial_gcycles(0.2)
        .activities(0.95, 0.3)
        .jitter(0.03)
        .sync(SyncModel::WorkQueue)
        .perf_constraint_fps(0.10)
        .build()
        .expect("valid model")
}

#[test]
fn linux_baseline_runs_all_benchmarks() {
    // Truncated slices of every ALPBench preset complete without issue.
    let config = SimConfig {
        max_sim_time: 60.0,
        ..SimConfig::default()
    };
    for app in alpbench::suite(DataSet::One) {
        let out = run_app(&app, Box::new(NullController::default()), &config, 1);
        assert!(out.total_time > 0.0, "{} did not run", app.name);
        assert!(out.avg_temperature() > 25.0, "{} never warmed up", app.name);
        assert!(out.dynamic_energy_j > 0.0);
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let out = run_app(
            &cycling_app(),
            Box::new(DasDac14Controller::new(ControlConfig::default(), 5)),
            &SimConfig::default(),
            5,
        );
        (
            out.total_time.to_bits(),
            out.dynamic_energy_j.to_bits(),
            out.decisions,
            out.migrations,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn proposed_beats_linux_on_cycling_workload() {
    let config = SimConfig::default();
    let linux = run_app(
        &cycling_app(),
        Box::new(NullController::default()),
        &config,
        3,
    );
    let das = run_app(
        &cycling_app(),
        Box::new(DasDac14Controller::new(ControlConfig::default(), 3)),
        &config,
        3,
    );
    assert!(linux.completed && das.completed);
    let l = linux.reliability_summary();
    let d = das.reliability_summary();
    assert!(
        d.mttf_cycling_years > l.mttf_cycling_years,
        "proposed {:.2} y should beat linux {:.2} y on cycling MTTF",
        d.mttf_cycling_years,
        l.mttf_cycling_years
    );
}

#[test]
fn proposed_cools_a_hot_workload() {
    let config = SimConfig::default();
    let linux = run_app(&hot_app(), Box::new(NullController::default()), &config, 3);
    // Shorter decision epochs so learning converges within the run.
    let cfg = ControlConfig {
        epoch_samples: 4,
        ..ControlConfig::default()
    };
    let das = run_app(
        &hot_app(),
        Box::new(DasDac14Controller::new(cfg, 3)),
        &config,
        3,
    );
    assert!(
        das.avg_temperature() < linux.avg_temperature() - 3.0,
        "proposed {:.1} degC vs linux {:.1} degC",
        das.avg_temperature(),
        linux.avg_temperature()
    );
    let l = linux.reliability_summary();
    let d = das.reliability_summary();
    assert!(d.mttf_aging_years > l.mttf_aging_years);
}

#[test]
fn governor_policies_order_execution_time() {
    let config = SimConfig::default();
    let app = hot_app();
    let t = |c: Box<dyn thermorl::sim::ThermalController>| {
        let out = run_app(&app, c, &config, 2);
        assert!(out.completed, "policy must finish");
        out.total_time
    };
    let fast = t(Box::new(FixedPolicy::userspace("3.4", 5)));
    let mid = t(Box::new(FixedPolicy::userspace("2.4", 2)));
    let slow = t(Box::new(FixedPolicy::powersave()));
    assert!(fast < mid && mid < slow, "{fast} < {mid} < {slow} violated");
    // And the ratios follow the frequency ratios, coarsely.
    assert!((slow / fast - 3.4 / 1.6).abs() < 0.5);
}

#[test]
fn ge_controller_respects_its_thermal_target() {
    let config = SimConfig::default();
    let out = run_app(
        &hot_app(),
        Box::new(GeQiu2011Controller::new(GeConfig::default(), 4)),
        &config,
        4,
    );
    let linux = run_app(&hot_app(), Box::new(NullController::default()), &config, 4);
    assert!(out.avg_temperature() < linux.avg_temperature());
}

#[test]
fn scenario_switch_is_detected_autonomously() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use thermorl::sim::{Actuation, Observation, ThermalController};

    struct Spy {
        inner: DasDac14Controller,
        inters: Arc<AtomicU64>,
    }
    impl ThermalController for Spy {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn sampling_interval(&self) -> f64 {
            self.inner.sampling_interval()
        }
        fn on_start(&mut self, t: usize, c: usize) {
            self.inner.on_start(t, c);
        }
        fn on_sample(&mut self, obs: &Observation<'_>) -> Option<Actuation> {
            // The spy can see `obs.app_switched`, but the inner agent
            // must not need it — only forward the observation.
            let act = self.inner.on_sample(obs);
            self.inters
                .store(self.inner.inter_events(), Ordering::Relaxed);
            act
        }
    }

    // Cool cycler followed by a heater: a hard hazard jump.
    let scenario = Scenario::new(vec![cycling_app(), hot_app()]);
    let inters = Arc::new(AtomicU64::new(0));
    let spy = Spy {
        inner: DasDac14Controller::new(ControlConfig::default(), 8),
        inters: inters.clone(),
    };
    let out = run_scenario(&scenario, Box::new(spy), &SimConfig::default(), 8);
    assert!(out.completed);
    assert!(
        inters.load(Ordering::Relaxed) >= 1,
        "the moving-average detector must flag the app switch"
    );
}

#[test]
fn user_assignment_changes_thread_placement_effects() {
    // The motivational experiment's mechanism: a fixed assignment produces
    // a different thermal outcome than the load balancer.
    let config = SimConfig::default();
    let app = alpbench::face_rec(DataSet::One);
    let mut quick = config.clone();
    quick.max_sim_time = 120.0;
    let linux = run_app(&app, Box::new(NullController::default()), &quick, 5);
    let fixed = run_app(&app, Box::new(FixedPolicy::user_assignment()), &quick, 5);
    assert!(
        fixed.migrations < linux.migrations,
        "pinning must reduce migrations: {} vs {}",
        fixed.migrations,
        linux.migrations
    );
    // Outcomes differ measurably.
    assert!((fixed.avg_temperature() - linux.avg_temperature()).abs() > 0.1);
}

#[test]
fn energy_accounting_is_consistent() {
    let out = run_app(
        &cycling_app(),
        Box::new(NullController::default()),
        &SimConfig::default(),
        6,
    );
    let implied_avg = out.dynamic_energy_j / out.total_time;
    assert!(
        (implied_avg - out.avg_dynamic_power_w).abs() < 0.5,
        "energy/time {:.2} vs avg power {:.2}",
        implied_avg,
        out.avg_dynamic_power_w
    );
    assert!(out.static_energy_j > 0.0);
}

#[test]
fn reliability_reports_cover_all_cores() {
    let out = run_app(
        &cycling_app(),
        Box::new(NullController::default()),
        &SimConfig::default(),
        6,
    );
    let reports = out.reliability_reports();
    assert_eq!(reports.len(), 4);
    for r in &reports {
        assert!(r.avg_temp_c > 25.0 && r.avg_temp_c < 90.0);
        assert!(r.mttf_aging_years > 0.0);
    }
}
