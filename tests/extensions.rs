//! Integration tests of the §7 future-work extensions: concurrent
//! applications and heterogeneous cores.

use thermorl::control::DasDac14Controller;
use thermorl::platform::{big_little_quad, CoreClass};
use thermorl::prelude::*;
use thermorl::sim::{run_concurrent, NullController};

fn small_app(name: &str, frames: usize) -> AppModel {
    AppModel::builder(name)
        .threads(3)
        .frames(frames)
        .parallel_gcycles(0.5)
        .serial_gcycles(0.1)
        .perf_constraint_fps(0.1)
        .build()
        .expect("valid model")
}

#[test]
fn concurrent_apps_share_and_complete() {
    let apps = [small_app("a", 40), small_app("b", 40)];
    let out = run_concurrent(
        &apps,
        Box::new(NullController::default()),
        &SimConfig::default(),
        1,
    );
    assert!(out.completed);
    assert_eq!(out.app_results.len(), 2);
    assert!(out.app_results.iter().all(|r| r.finish_time.is_some()));
}

#[test]
fn proposed_controller_manages_concurrent_mix() {
    let apps = [small_app("a", 150), small_app("b", 150)];
    let out = run_concurrent(
        &apps,
        Box::new(DasDac14Controller::new(ControlConfig::default(), 3)),
        &SimConfig::default(),
        3,
    );
    assert!(out.completed);
    assert!(out.decisions > 0);
    let r = out.reliability_summary();
    assert!(r.mttf_aging_years > 0.0 && r.mttf_cycling_years > 0.0);
}

#[test]
fn concurrent_run_is_deterministic() {
    let run = || {
        let apps = [small_app("a", 60), small_app("b", 60)];
        let out = run_concurrent(
            &apps,
            Box::new(NullController::default()),
            &SimConfig::default(),
            9,
        );
        (out.total_time.to_bits(), out.dynamic_energy_j.to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn big_little_machine_is_slower_but_cooler_when_packed_little() {
    use thermorl::baselines::FixedPolicy;
    use thermorl::platform::ThreadAssignment;

    let mut app = small_app("hot", 60);
    app.parallel_gcycles = 4.0;
    app.activity_parallel = 0.95;

    let mut hetero = SimConfig::default();
    hetero.machine.core_classes = Some(big_little_quad());

    // Pin everything on the two little cores vs the two big cores.
    let on_little = FixedPolicy::new(
        "little-only",
        Some(ThreadAssignment::grouped(&[(vec![2, 3], 3)])),
        None,
    );
    let on_big = FixedPolicy::new(
        "big-only",
        Some(ThreadAssignment::grouped(&[(vec![0, 1], 3)])),
        None,
    );
    let little = run_app(&app, Box::new(on_little), &hetero, 2);
    let big = run_app(&app, Box::new(on_big), &hetero, 2);
    assert!(little.completed && big.completed);
    assert!(
        little.total_time > big.total_time * 1.3,
        "little cores must be slower: {} vs {}",
        little.total_time,
        big.total_time
    );
    assert!(
        little.peak_temperature() < big.peak_temperature() - 3.0,
        "little cores must run cooler: {} vs {}",
        little.peak_temperature(),
        big.peak_temperature()
    );
}

#[test]
fn homogeneous_and_none_classes_agree() {
    // Four explicit big cores == no classes at all.
    let app = small_app("a", 40);
    let mut explicit = SimConfig::default();
    explicit.machine.core_classes = Some(vec![CoreClass::big(); 4]);
    let a = run_app(&app, Box::new(NullController::default()), &explicit, 4);
    let b = run_app(
        &app,
        Box::new(NullController::default()),
        &SimConfig::default(),
        4,
    );
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
    assert_eq!(a.dynamic_energy_j.to_bits(), b.dynamic_energy_j.to_bits());
}

#[test]
fn proposed_controller_runs_on_heterogeneous_machine() {
    let mut app = small_app("hot", 200);
    app.parallel_gcycles = 2.0;
    let mut config = SimConfig::default();
    config.machine.core_classes = Some(big_little_quad());
    let out = run_app(
        &app,
        Box::new(DasDac14Controller::new(ControlConfig::default(), 5)),
        &config,
        5,
    );
    assert!(out.completed);
    assert!(out.decisions > 0);
}

#[test]
fn hetero_action_space_drives_per_core_governors() {
    use thermorl::control::ActionSpace;
    let mut app = small_app("hot", 150);
    app.parallel_gcycles = 2.0;
    let mut config = SimConfig::default();
    config.machine.core_classes = Some(big_little_quad());
    let mut cfg = ControlConfig::default();
    cfg.action_space = Some(ActionSpace::hetero_default(
        app.num_threads,
        &big_little_quad(),
        &cfg.opp_table,
    ));
    let out = run_app(&app, Box::new(DasDac14Controller::new(cfg, 6)), &config, 6);
    assert!(out.completed);
    assert!(out.decisions > 0);
    let r = out.reliability_summary();
    assert!(r.mttf_combined_years > 0.0);
}
