//! # thermorl
//!
//! A reproduction of *"Reinforcement Learning-Based Inter- and
//! Intra-Application Thermal Optimization for Lifetime Improvement of
//! Multicore Systems"* (Das et al., DAC 2014) as a pure-Rust simulation
//! stack.
//!
//! The paper's Q-learning thermal manager picks, every decision epoch, a
//! joint action of *thread-to-core affinity assignment* and *CPU governor /
//! DVFS setting* so as to maximise lifetime (MTTF) by jointly minimising
//! aging (average temperature) and thermal-cycling stress. This workspace
//! rebuilds the entire experimental platform in software:
//!
//! * [`thermal`] — compact RC thermal model of a quad-core die + sensors,
//! * [`platform`] — cores, DVFS operating points, power/energy, the five
//!   Linux cpufreq governors, an affinity-aware load-balancing scheduler
//!   and synthetic perf counters,
//! * [`workload`] — phase-structured multi-threaded application models
//!   mirroring the ALPBench multimedia suite,
//! * [`reliability`] — rainflow counting, Coffin–Manson, Miner's rule and
//!   Arrhenius aging (Eq. 1–6 of the paper),
//! * [`sim`] — the co-simulation engine and controller interface,
//! * [`control`] — **the paper's contribution**: the dual-Q-table
//!   inter/intra-application learning agent (Algorithm 1),
//! * [`baselines`] — Linux ondemand, static policies and the Ge & Qiu
//!   DAC'11 comparator.
//!
//! # Quickstart
//!
//! ```
//! use thermorl::prelude::*;
//!
//! // Run the proposed controller on one tachyon-like workload.
//! let app = alpbench::tachyon(DataSet::One);
//! let controller = DasDac14Controller::new(ControlConfig::default(), 42);
//! let mut config = SimConfig::default();
//! config.max_sim_time = 120.0; // keep the doc test quick
//! let outcome = run_app(&app, Box::new(controller), &config, 42);
//! let report = outcome.reliability_summary();
//! assert!(report.peak_temp_c < 100.0);
//! ```

pub use thermorl_baselines as baselines;
pub use thermorl_control as control;
pub use thermorl_platform as platform;
pub use thermorl_reliability as reliability;
pub use thermorl_sim as sim;
pub use thermorl_thermal as thermal;
pub use thermorl_workload as workload;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use thermorl_baselines::{FixedPolicy, GeQiu2011Controller, LinuxDefaultController};
    pub use thermorl_control::{ControlConfig, DasDac14Controller};
    pub use thermorl_platform::{AffinityMask, GovernorKind, OppTable};
    pub use thermorl_reliability::{ReliabilityAnalyzer, ReliabilityReport, ThermalProfile};
    pub use thermorl_sim::{run_app, run_scenario, RunOutcome, SimConfig};
    pub use thermorl_thermal::{DieModel, DieParams, Floorplan};
    pub use thermorl_workload::{alpbench, AppModel, DataSet, Scenario};
}
