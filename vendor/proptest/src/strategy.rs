//! Value-generation strategies (no shrinking).

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Generating references delegate to the referent, mirroring upstream.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let u = rng.next_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        // Finite values only: the workspace's properties expect arithmetic
        // to stay well-defined.
        (rng.next_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
