//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any`, range and tuple strategies,
//! `collection::vec`, and `ProptestConfig::with_cases` — on top of a
//! deterministic splitmix64 generator. No shrinking: a failing case
//! panics with the case number so it can be replayed (generation is
//! deterministic per test name).

pub mod test_runner;

pub mod strategy;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a fixed length or a length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-test configuration (`ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The common prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests over generated inputs.
///
/// Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u64..10, v in proptest::collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                )*
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        message
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

/// Picks uniformly among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
