//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in containers without network access to
//! crates.io, so the external `rand` dependency is replaced by this
//! vendored implementation of the *subset* the workspace actually uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over half-open and inclusive numeric ranges
//! * [`Rng::gen_bool`]
//!
//! The generator is a splitmix64 stream — statistically fine for the
//! simulation noise and tie-breaking this workspace needs, and fully
//! deterministic per seed. It is **not** the upstream `StdRng` (ChaCha12),
//! so absolute simulation outputs differ from a crates.io build; nothing
//! in the workspace depends on the exact stream, only on determinism.

use core::ops::{Range, RangeInclusive};

/// Advances a splitmix64 state and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that a range can produce uniformly at random.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Converts 53 random bits into a float in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Types producible by [`Rng::gen`] from the standard distribution.
pub trait StandardSample {
    /// Draws one value from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

/// User-facing random sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws from the standard distribution (floats in `[0, 1)`).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small seeds.
            let mut state = seed ^ 0x1CE_B00DA_u64;
            let _ = splitmix64(&mut state);
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl StdRng {
        /// The raw generator state, for checkpointing a live stream.
        #[inline]
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator mid-stream from a [`StdRng::state`] value
        /// (no warm-up: the state is resumed exactly where it was).
        #[inline]
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
