//! Offline stand-in for `serde`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — no serde serializer crate (e.g. `serde_json`) is in the
//! dependency tree, and the checkpoint format used by `thermorl-runner` is
//! hand-written JSON in `thermorl_sim::json`. This vendored crate therefore
//! provides the two trait names as blanket markers and re-exports no-op
//! derive macros, which is exactly the surface the workspace consumes while
//! building in containers with no access to crates.io.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// `serde::de` namespace subset.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// `serde::ser` namespace subset.
pub mod ser {
    pub use super::Serialize;
}
