//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — benchmark
//! groups, `bench_function`, `Bencher::iter` / `iter_batched`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple calibrated timing loop that prints a median ns/iter
//! estimate. Good enough to keep the benches compiling, runnable and
//! comparable across commits in containers without crates.io access;
//! not a statistical replacement for upstream criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(iters_per_sample: u64, sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            iters_per_sample,
        }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let capacity = self.samples.capacity().max(1);
        for _ in 0..capacity {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let capacity = self.samples.capacity().max(1);
        for _ in 0..capacity {
            let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        ns[ns.len() / 2]
    }
}

fn run_one(label: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate iterations so one sample takes roughly 5 ms.
    let mut probe = Bencher::new(1, 1);
    f(&mut probe);
    let per_iter = probe.median_ns_per_iter().max(1.0);
    let iters = ((5.0e6 / per_iter) as u64).clamp(1, 1_000_000);
    let mut bencher = Bencher::new(iters, sample_count);
    f(&mut bencher);
    let ns = bencher.median_ns_per_iter();
    let (value, unit) = if ns >= 1.0e9 {
        (ns / 1.0e9, "s")
    } else if ns >= 1.0e6 {
        (ns / 1.0e6, "ms")
    } else if ns >= 1.0e3 {
        (ns / 1.0e3, "us")
    } else {
        (ns, "ns")
    };
    println!("bench: {label:<40} {value:>10.2} {unit}/iter ({iters} iters/sample)");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 11 }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
