//! The paper's §7 future-work extension: *concurrent* applications.
//! Two benchmarks share the quad-core simultaneously; the controller
//! must manage the combined thermal load and notices when the mix
//! changes (one application completing).
//!
//! ```text
//! cargo run --release --example concurrent_apps
//! ```

use thermorl::prelude::*;
use thermorl::sim::run_concurrent;

fn main() {
    // Shrink the workloads so the demo finishes quickly.
    let mut dec = alpbench::mpeg_dec(DataSet::One);
    dec.total_frames = 300;
    let mut tach = alpbench::tachyon(DataSet::Two);
    tach.total_frames = 60;
    let apps = [dec, tach];

    println!(
        "running {} and {} concurrently ({} threads total)\n",
        apps[0].name,
        apps[1].name,
        apps.iter().map(|a| a.num_threads).sum::<usize>()
    );

    for (label, outcome) in [
        (
            "linux-ondemand",
            run_concurrent(
                &apps,
                Box::new(thermorl::sim::NullController::default()),
                &SimConfig::default(),
                42,
            ),
        ),
        (
            "proposed-dac14",
            run_concurrent(
                &apps,
                Box::new(DasDac14Controller::new(ControlConfig::default(), 42)),
                &SimConfig::default(),
                42,
            ),
        ),
    ] {
        let r = outcome.reliability_summary();
        println!("policy: {label}");
        for app in &outcome.app_results {
            println!(
                "  {:<10} finished at {:>7.0} s ({} frames)",
                app.name,
                app.finish_time.unwrap_or(f64::NAN),
                app.frames_completed
            );
        }
        println!(
            "  avg T {:.1} degC | TC-MTTF {:.2} y | aging MTTF {:.2} y | dyn {:.1} kJ\n",
            outcome.avg_temperature(),
            r.mttf_cycling_years,
            r.mttf_aging_years,
            outcome.dynamic_energy_j / 1e3
        );
    }
}
