//! Exercise the thermal substrate directly: steady states via LU
//! decomposition, transients via explicit integration, and the quantised
//! sensor view a controller would actually see.
//!
//! ```text
//! cargo run --release --example thermal_playground
//! ```

use thermorl::prelude::*;
use thermorl::reliability::ReliabilityAnalyzer;
use thermorl::thermal::{SensorBank, SensorParams};

fn main() {
    let mut die = DieModel::quad_core();
    let mut sensors = SensorBank::new(die.num_cores(), SensorParams::default(), 99);

    // Hotspot: 20 W on core 0, idle leakage elsewhere.
    die.set_core_power(0, 20.0);
    for c in 1..4 {
        die.set_core_power(c, 2.0);
    }
    die.settle();
    println!("steady state with a 20 W hotspot on core 0:");
    for c in 0..4 {
        println!("  core {c}: {:6.2} degC", die.core_temperature(c));
    }
    println!("  sink:   {:6.2} degC\n", die.sink_temperature());

    // Transient: pulse the hotspot on/off every 5 s and watch the sensor.
    println!("10 on/off pulses (5 s period), sensor view of core 0:");
    let mut profile = ThermalProfile::from_samples(1.0, vec![]);
    for pulse in 0..10 {
        let power = if pulse % 2 == 0 { 20.0 } else { 2.0 };
        die.set_core_power(0, power);
        for _ in 0..5 {
            die.advance(1.0);
            let reading = sensors.read_all(&die.core_temperatures())[0];
            profile.push(reading);
        }
        println!(
            "  t={:3}s power={:4.0}W  true={:6.2}  sensor={:5.1}",
            (pulse + 1) * 5,
            power,
            die.core_temperature(0),
            profile.samples().last().copied().unwrap_or(f64::NAN)
        );
    }

    // What that cycling does to the core's lifetime.
    let report = ReliabilityAnalyzer::default().analyze(&profile);
    println!(
        "\nrainflow counted {:.1} cycles; cycling MTTF {:.1} y, aging MTTF {:.1} y",
        report.num_cycles, report.mttf_cycling_years, report.mttf_aging_years
    );
}
