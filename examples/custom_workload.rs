//! Build your own workload and controller configuration: a bursty
//! "game-engine-like" application, a custom state space and a custom
//! action space, then compare against stock Linux.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use thermorl::control::{ActionSpace, ControlConfig, StateSpace};
use thermorl::platform::{assignment_presets, GovernorKind};
use thermorl::prelude::*;
use thermorl::workload::SyncModel;

fn main() {
    // A bursty 8-thread workload with strong scene modulation: heavy
    // "combat" frames alternate with light "menu" frames every ~15 frames.
    let app = AppModel::builder("game-engine")
        .threads(8)
        .frames(600)
        .parallel_gcycles(0.9)
        .serial_gcycles(0.5)
        .activities(0.8, 0.3)
        .mem_intensity(0.45)
        .jitter(0.1)
        .modulation(0.55, 15)
        .modulate_activity(true)
        .sync(SyncModel::Barrier)
        .perf_constraint_fps(0.9)
        .build()
        .expect("valid model");

    // A finer state space and a custom action menu for this workload.
    let mappings = assignment_presets(app.num_threads, 4);
    let cfg = ControlConfig {
        state_space: StateSpace::new(5, 4, 10.0, 8.0),
        action_space: Some(ActionSpace::cartesian(
            &mappings[..2.min(mappings.len())],
            &[
                GovernorKind::Ondemand,
                GovernorKind::Conservative,
                GovernorKind::Userspace(2),
                GovernorKind::Userspace(4),
            ],
        )),
        ..ControlConfig::default()
    };

    println!("workload: {} ({} threads)\n", app.name, app.num_threads);
    println!(
        "{:<16} {:>9} {:>8} {:>10} {:>10}",
        "policy", "time(s)", "avgT", "TC-MTTF", "Age-MTTF"
    );
    for (label, outcome) in [
        (
            "linux-ondemand",
            run_app(
                &app,
                Box::new(LinuxDefaultController::new()),
                &SimConfig::default(),
                7,
            ),
        ),
        (
            "proposed-custom",
            run_app(
                &app,
                Box::new(DasDac14Controller::new(cfg, 7)),
                &SimConfig::default(),
                7,
            ),
        ),
    ] {
        let r = outcome.reliability_summary();
        println!(
            "{:<16} {:>9.1} {:>8.1} {:>10.2} {:>10.2}",
            label,
            outcome.total_time,
            outcome.avg_temperature(),
            r.mttf_cycling_years,
            r.mttf_aging_years,
        );
    }
}
