//! A Figure-8-style design-space sweep through the public API: vary the
//! Q-table's state and action dimensions and watch the learning-time /
//! solution-quality trade-off the paper's §6.4 discusses.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use thermorl::control::{ActionSpace, StateSpace};
use thermorl::platform::{assignment_presets, GovernorKind, OppTable};
use thermorl::prelude::*;

fn main() {
    let mut app = alpbench::mpeg_dec(DataSet::One);
    app.total_frames = 600; // trim the sweep's wall-clock time

    let opps = OppTable::intel_quad();
    let mappings = assignment_presets(app.num_threads, 4);
    let governors = [
        GovernorKind::Ondemand,
        GovernorKind::Performance,
        GovernorKind::Conservative,
        GovernorKind::Userspace(4),
        GovernorKind::Userspace(3),
        GovernorKind::Userspace(2),
    ];

    println!(
        "{:>7} {:>8} {:>10} {:>12} {:>12}",
        "states", "actions", "epochs", "TC-MTTF(y)", "Age-MTTF(y)"
    );
    for (s_bins, a_bins) in [(2, 2), (4, 2), (4, 3)] {
        for n_actions in [4usize, 8, 12] {
            let cfg = ControlConfig {
                state_space: StateSpace::new(s_bins, a_bins, 8.0, 8.0),
                action_space: Some(
                    ActionSpace::cartesian(&mappings, &governors).truncated(n_actions),
                ),
                opp_table: opps.clone(),
                ..ControlConfig::default()
            };
            let controller = DasDac14Controller::new(cfg, 42);
            let outcome = run_app(&app, Box::new(controller), &SimConfig::default(), 42);
            let r = outcome.reliability_summary();
            println!(
                "{:>7} {:>8} {:>10} {:>12.2} {:>12.2}",
                s_bins * a_bins,
                n_actions,
                outcome.decisions,
                r.mttf_cycling_years,
                r.mttf_aging_years,
            );
        }
    }
    println!("\nbigger action menus buy MTTF; bigger tables cost learning time.");
}
