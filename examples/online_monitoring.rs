//! Live lifetime monitoring: stream sensor samples into the O(1)
//! [`OnlineAnalyzer`] while an application runs, printing running MTTF
//! estimates — the measurement loop a production run-time system would
//! use instead of re-analysing whole traces.
//!
//! ```text
//! cargo run --release --example online_monitoring
//! ```

use thermorl::prelude::*;
use thermorl::reliability::OnlineAnalyzer;
use thermorl::sim::{Actuation, Observation, ThermalController};

/// A pass-through controller that also feeds a per-core online analyzer.
struct Monitor {
    inner: DasDac14Controller,
    per_core: Vec<OnlineAnalyzer>,
    last_print: f64,
}

impl ThermalController for Monitor {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn sampling_interval(&self) -> f64 {
        self.inner.sampling_interval()
    }
    fn on_start(&mut self, threads: usize, cores: usize) {
        self.inner.on_start(threads, cores);
        self.per_core = (0..cores)
            .map(|_| OnlineAnalyzer::with_defaults(self.inner.sampling_interval()))
            .collect();
    }
    fn on_sample(&mut self, obs: &Observation<'_>) -> Option<Actuation> {
        for (analyzer, &t) in self.per_core.iter_mut().zip(obs.sensor_temps) {
            analyzer.push(t);
        }
        if obs.time - self.last_print >= 120.0 {
            self.last_print = obs.time;
            let worst = self
                .per_core
                .iter()
                .map(|a| a.stats())
                .min_by(|a, b| {
                    a.mttf_cycling_years
                        .partial_cmp(&b.mttf_cycling_years)
                        .expect("finite ordering")
                })
                .expect("at least one core");
            println!(
                "t={:6.0}s  avgT={:5.1}C  damage={:9.2e}  TC-MTTF={:8.2}y  Age-MTTF={:6.2}y",
                obs.time,
                worst.avg_temp_c,
                worst.damage,
                worst.mttf_cycling_years,
                worst.mttf_aging_years
            );
        }
        self.inner.on_sample(obs)
    }
}

fn main() {
    let app = alpbench::mpeg_enc(DataSet::One);
    println!(
        "live monitoring of {} under the proposed controller:\n",
        app.name
    );
    let monitor = Monitor {
        inner: DasDac14Controller::new(ControlConfig::default(), 42),
        per_core: Vec::new(),
        last_print: 0.0,
    };
    let outcome = run_app(&app, Box::new(monitor), &SimConfig::default(), 42);
    let end = outcome.reliability_summary();
    println!(
        "\nfinal (batch) analysis: TC-MTTF {:.2} y, Age-MTTF {:.2} y over {:.0} s",
        end.mttf_cycling_years, end.mttf_aging_years, outcome.total_time
    );
}
