//! Intra-application comparison (a single row of the paper's Table 2):
//! Linux ondemand vs Ge & Qiu DAC'11 vs the proposed controller on one
//! benchmark/dataset.
//!
//! ```text
//! cargo run --release --example intra_comparison [tachyon|mpeg_dec|mpeg_enc|face_rec|sphinx] [1|2|3]
//! ```

use thermorl::baselines::GeConfig;
use thermorl::prelude::*;
use thermorl::sim::ThermalController;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tachyon".into());
    let ds = match std::env::args().nth(2).as_deref() {
        Some("2") => DataSet::Two,
        Some("3") => DataSet::Three,
        _ => DataSet::One,
    };
    let app = alpbench::by_name(&name, ds).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; using tachyon");
        alpbench::tachyon(ds)
    });
    println!("benchmark: {} ({})\n", app.name, app.dataset);
    println!(
        "{:<16} {:>9} {:>8} {:>8} {:>10} {:>10} {:>9}",
        "policy", "time(s)", "avgT", "peakT", "TC-MTTF", "Age-MTTF", "dynE(kJ)"
    );

    let policies: Vec<Box<dyn ThermalController>> = vec![
        Box::new(LinuxDefaultController::new()),
        Box::new(GeQiu2011Controller::new(GeConfig::default(), 42)),
        Box::new(DasDac14Controller::new(ControlConfig::default(), 42)),
    ];
    for controller in policies {
        let label = controller.name().to_string();
        let outcome = run_app(&app, controller, &SimConfig::default(), 42);
        let r = outcome.reliability_summary();
        println!(
            "{:<16} {:>9.1} {:>8.1} {:>8.1} {:>10.2} {:>10.2} {:>9.1}",
            label,
            outcome.total_time,
            outcome.avg_temperature(),
            outcome.peak_temperature(),
            r.mttf_cycling_years,
            r.mttf_aging_years,
            outcome.dynamic_energy_j / 1e3,
        );
    }
}
