//! Inter-application scenario (the paper's §6.2): two applications run
//! back-to-back and the proposed controller must detect the switch
//! *autonomously* from its stress/aging moving averages — no signal from
//! the application layer.
//!
//! ```text
//! cargo run --release --example inter_application
//! ```

use std::cell::Cell;
use std::rc::Rc;

use thermorl::control::DasDac14Controller;
use thermorl::prelude::*;
use thermorl::sim::{Actuation, Observation, ThermalController};

/// Wraps the agent to report its detection events live.
struct Narrator {
    inner: DasDac14Controller,
    inter_seen: Rc<Cell<u64>>,
}

impl ThermalController for Narrator {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn sampling_interval(&self) -> f64 {
        self.inner.sampling_interval()
    }
    fn on_start(&mut self, t: usize, c: usize) {
        self.inner.on_start(t, c);
    }
    fn on_sample(&mut self, obs: &Observation<'_>) -> Option<Actuation> {
        let before = self.inner.inter_events();
        let act = self.inner.on_sample(obs);
        if self.inner.inter_events() > before {
            println!(
                "t={:7.0}s  >>> inter-application change detected (running {}), Q-table reset",
                obs.time, obs.app_name
            );
            self.inter_seen.set(self.inner.inter_events());
        }
        act
    }
}

fn main() {
    let scenario = Scenario::new(vec![
        alpbench::mpeg_dec(DataSet::One),
        alpbench::tachyon(DataSet::One),
    ]);
    println!("scenario: {}\n", scenario.name);

    let detections = Rc::new(Cell::new(0));
    let controller = Narrator {
        inner: DasDac14Controller::new(ControlConfig::default(), 42),
        inter_seen: detections.clone(),
    };
    let outcome = run_scenario(&scenario, Box::new(controller), &SimConfig::default(), 42);

    println!();
    for app in &outcome.app_results {
        println!(
            "{:<10} {:>7.0}s -> {:>7.0}s  ({} frames)",
            app.name,
            app.start_time,
            app.finish_time.unwrap_or(f64::NAN),
            app.frames_completed
        );
    }
    let r = outcome.reliability_summary();
    println!(
        "\nswitches detected autonomously: {} (actual switches: {})",
        detections.get(),
        scenario.len() - 1
    );
    println!(
        "cycling MTTF {:.2} y, aging MTTF {:.2} y, combined {:.2} y",
        r.mttf_cycling_years, r.mttf_aging_years, r.mttf_combined_years
    );
}
