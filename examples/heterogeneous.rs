//! The paper's §7 future-work extension: *heterogeneous* cores.
//! A 2-big + 2-little quad-core runs the hot ray tracer; thread placement
//! becomes a lifetime lever (parking work on slow-cool efficiency cores).
//!
//! ```text
//! cargo run --release --example heterogeneous
//! ```

use thermorl::control::ActionSpace;
use thermorl::platform::big_little_quad;
use thermorl::prelude::*;
use thermorl::sim::NullController;

fn main() {
    let mut app = alpbench::tachyon(DataSet::One);
    app.total_frames = 120; // keep the demo quick
                            // The little cores cut peak throughput; relax the constraint to match.
    app.perf_constraint_fps *= 0.7;

    let mut config = SimConfig::default();
    config.machine.core_classes = Some(big_little_quad());

    // Give the agent class-aware actions: pack-on-big, pack-on-little
    // (with the idle class floored), and a big-favouring split.
    let mut cfg = ControlConfig::default();
    cfg.action_space = Some(ActionSpace::hetero_default(
        app.num_threads,
        &big_little_quad(),
        &cfg.opp_table,
    ));

    println!("platform: 2x big + 2x little quad-core\n");
    println!(
        "{:<16} {:>9} {:>8} {:>8} {:>10} {:>10}",
        "policy", "time(s)", "avgT", "peakT", "TC-MTTF", "Age-MTTF"
    );
    for (label, outcome) in [
        (
            "linux-ondemand",
            run_app(&app, Box::new(NullController::default()), &config, 42),
        ),
        (
            "proposed-dac14",
            run_app(
                &app,
                Box::new(DasDac14Controller::new(cfg, 42)),
                &config,
                42,
            ),
        ),
    ] {
        let r = outcome.reliability_summary();
        println!(
            "{:<16} {:>9.1} {:>8.1} {:>8.1} {:>10.2} {:>10.2}",
            label,
            outcome.total_time,
            outcome.avg_temperature(),
            outcome.peak_temperature(),
            r.mttf_cycling_years,
            r.mttf_aging_years,
        );
    }
    println!(
        "\nThe proposed controller's packed mappings now trade big-core speed\n\
         against little-core coolness on top of the DVFS axis."
    );
}
