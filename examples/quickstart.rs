//! Quickstart: run the proposed RL thermal controller on one benchmark
//! and print the lifetime numbers the DAC'14 paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use thermorl::prelude::*;

fn main() {
    // The workload: the paper's MPEG-2 decoder, first input clip,
    // six threads on a quad-core.
    let app = alpbench::mpeg_dec(DataSet::One);
    println!(
        "workload: {} ({}) — {} frames, P_c = {:.2} fps",
        app.name, app.dataset, app.total_frames, app.perf_constraint_fps
    );

    // The controller: Q-learning over (stress, aging) states with
    // affinity + governor actions, all defaults from the paper.
    let controller = DasDac14Controller::new(ControlConfig::default(), 42);

    // The platform: quad-core die + Linux-like scheduler/governors.
    let config = SimConfig::default();
    let outcome = run_app(&app, Box::new(controller), &config, 42);

    let report = outcome.reliability_summary();
    println!("execution time : {:8.1} s", outcome.total_time);
    println!("avg temperature: {:8.1} degC", outcome.avg_temperature());
    println!("peak temperature:{:8.1} degC", outcome.peak_temperature());
    println!("aging MTTF     : {:8.2} years", report.mttf_aging_years);
    println!("cycling MTTF   : {:8.2} years", report.mttf_cycling_years);
    println!("combined MTTF  : {:8.2} years", report.mttf_combined_years);
    println!(
        "dynamic energy : {:8.1} kJ (avg {:.1} W)",
        outcome.dynamic_energy_j / 1e3,
        outcome.avg_dynamic_power_w
    );
    println!(
        "decisions      : {:8} ({} sensor samples)",
        outcome.decisions, outcome.samples
    );
}
