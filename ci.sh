#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build (telemetry compiled out) =="
cargo build -q -p thermorl-bench --no-default-features

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== telemetry smoke test =="
cargo test -q -p thermorl-bench --test telemetry_smoke

echo "== cargo bench --no-run (benches must compile) =="
cargo bench --workspace --no-run

echo "== bench_thermal --quick (regenerate perf snapshot) =="
cargo run --release -q -p thermorl-bench --bin bench_thermal -- --quick

echo "CI OK"
