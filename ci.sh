#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build (telemetry compiled out) =="
cargo build -q -p thermorl-bench --no-default-features
cargo build -q -p thermorl-dispatch --no-default-features

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== telemetry smoke test =="
cargo test -q -p thermorl-bench --test telemetry_smoke

echo "== cargo bench --no-run (benches must compile) =="
cargo bench --workspace --no-run

echo "== bench_thermal --quick (regenerate perf snapshot) =="
cargo run --release -q -p thermorl-bench --bin bench_thermal -- --quick

echo "== dispatch loopback smoke (serve + status + work) =="
# A real coordinator/worker round trip over 127.0.0.1 on an ephemeral
# port, dispatching just the fig1/ slice of the campaign. Every step is
# wall-clock bounded; `wait` propagates serve's exit code (nonzero if
# any dispatched job failed).
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
timeout 300 cargo run --release -q -p thermorl-bench --bin run_all -- \
    dispatch serve --addr 127.0.0.1:0 --addr-file "$SMOKE_DIR/addr" \
    --store "$SMOKE_DIR/store.jsonl" --filter fig1/ \
    --telemetry "$SMOKE_DIR/telemetry.json" --quiet &
SERVE_PID=$!
for _ in $(seq 100); do [ -s "$SMOKE_DIR/addr" ] && break; sleep 0.1; done
[ -s "$SMOKE_DIR/addr" ] || { echo "coordinator never bound"; exit 1; }
timeout 60 cargo run --release -q -p thermorl-bench --bin run_all -- \
    dispatch status --coordinator-file "$SMOKE_DIR/addr"
timeout 300 cargo run --release -q -p thermorl-bench --bin run_all -- \
    dispatch work --coordinator-file "$SMOKE_DIR/addr" --quiet
wait "$SERVE_PID"
grep -q '"dispatch.leases_granted"' "$SMOKE_DIR/telemetry.json" \
    || { echo "dispatch telemetry missing lease counters"; exit 1; }

echo "CI OK"
