#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build (telemetry compiled out) =="
cargo build -q -p thermorl-bench --no-default-features
cargo build -q -p thermorl-dispatch --no-default-features
cargo build -q -p thermorl-serve --no-default-features

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== telemetry smoke test =="
cargo test -q -p thermorl-bench --test telemetry_smoke

echo "== cargo bench --no-run (benches must compile) =="
cargo bench --workspace --no-run

echo "== bench_thermal --quick --gate (regenerate perf snapshot, 3x regression gates) =="
# --gate bounds both die_advance_1s_ns and the large-floorplan
# 16x16 adaptive_advance_1s_ns at 3x their committed numbers.
cargo run --release -q -p thermorl-bench --bin bench_thermal -- --quick --gate
grep -q '"batch"' BENCH_thermal.json \
    || { echo "BENCH_thermal.json missing the batch section"; exit 1; }
grep -q '"large"' BENCH_thermal.json \
    || { echo "BENCH_thermal.json missing the large-floorplan sweep"; exit 1; }
grep -q '"32x32"' BENCH_thermal.json \
    || { echo "BENCH_thermal.json large sweep missing the 32x32 cell"; exit 1; }

echo "== policy tournament --quick (2 policies x 3 scenarios incl. grid_4x4, leaderboard schema gate) =="
rm -f BENCH_tournament.json
timeout 300 cargo run --release -q -p thermorl-bench --bin tournament -- \
    --quick --quiet --checkpoint "$(mktemp -d)/tournament.jsonl"
python3 - BENCH_tournament.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "thermorl-tournament-v1", doc.get("schema")
scenarios = doc["scenarios"]
assert len(scenarios) == 3, f"quick gate expects 3 scenarios, got {len(scenarios)}"
names = [s["name"] for s in scenarios]
assert "grid_4x4" in names, f"quick gate expects the grid_4x4 cell, got {names}"
for s in scenarios:
    assert s["name"], "scenario without a name"
    cells = s["cells"]
    assert len(cells) == 2, f"quick gate expects 2 policies, got {len(cells)}"
    for c in cells:
        for key in ("policy", "mttf_years", "energy_j", "ips",
                    "avg_temp_c", "peak_temp_c", "completed", "reps", "score"):
            assert key in c, f"cell missing {key}: {sorted(c)}"
        assert c["mttf_years"] > 0 and c["energy_j"] > 0 and c["ips"] > 0, c
board = doc["leaderboard"]
assert board, "empty leaderboard"
winner = doc["winner"]
assert winner == board[0]["policy"], f"winner {winner!r} != top row {board[0]}"
print(f"tournament OK: winner={winner}, "
      f"{len(scenarios)} scenarios x {len(board)} policies")
EOF

echo "== dispatch loopback smoke (serve + status + work) =="
# A real coordinator/worker round trip over 127.0.0.1 on an ephemeral
# port, dispatching just the fig1/ slice of the campaign. Every step is
# wall-clock bounded; `wait` propagates serve's exit code (nonzero if
# any dispatched job failed).
SMOKE_DIR=$(mktemp -d)
SERVE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR" "$SERVE_DIR"' EXIT
timeout 300 cargo run --release -q -p thermorl-bench --bin run_all -- \
    dispatch serve --addr 127.0.0.1:0 --addr-file "$SMOKE_DIR/addr" \
    --store "$SMOKE_DIR/store.jsonl" --filter fig1/ \
    --telemetry "$SMOKE_DIR/telemetry.json" --quiet &
SERVE_PID=$!
for _ in $(seq 100); do [ -s "$SMOKE_DIR/addr" ] && break; sleep 0.1; done
[ -s "$SMOKE_DIR/addr" ] || { echo "coordinator never bound"; exit 1; }
timeout 60 cargo run --release -q -p thermorl-bench --bin run_all -- \
    dispatch status --coordinator-file "$SMOKE_DIR/addr"
timeout 300 cargo run --release -q -p thermorl-bench --bin run_all -- \
    dispatch work --coordinator-file "$SMOKE_DIR/addr" --quiet
wait "$SERVE_PID"
grep -q '"dispatch.leases_granted"' "$SMOKE_DIR/telemetry.json" \
    || { echo "dispatch telemetry missing lease counters"; exit 1; }

echo "== serve loopback smoke (run + bench + kill -9 + restart + recovery) =="
# A real supervisor on an ephemeral port: drive 8 dies for 500 observes,
# SIGKILL the supervisor (no final snapshot pass), restart it on the same
# store, and assert the second load run resumes all 8 sessions from their
# periodic snapshots instead of starting fresh.
timeout 300 cargo run --release -q -p thermorl-bench --bin serve -- \
    run --addr 127.0.0.1:0 --addr-file "$SERVE_DIR/addr" \
    --store "$SERVE_DIR/snapshots.jsonl" --quiet &
SERVE_PID=$!
for _ in $(seq 100); do [ -s "$SERVE_DIR/addr" ] && break; sleep 0.1; done
[ -s "$SERVE_DIR/addr" ] || { echo "supervisor never bound"; exit 1; }
timeout 120 cargo run --release -q -p thermorl-bench --bin serve -- \
    bench --addr-file "$SERVE_DIR/addr" --dies 8 --requests 500 --rate 4000 \
    --out "$SERVE_DIR/bench_before_kill.json" > /dev/null
# SIGKILL the supervisor *binary*, not the timeout/cargo wrapper —
# killing the wrapper would orphan the server and skip the crash.
pkill -9 -f "serve run --addr 127.0.0.1:0 --addr-file $SERVE_DIR/addr " \
    || kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
timeout 300 cargo run --release -q -p thermorl-bench --bin serve -- \
    run --addr 127.0.0.1:0 --addr-file "$SERVE_DIR/addr2" \
    --store "$SERVE_DIR/snapshots.jsonl" --trace --quiet &
SERVE_PID=$!
for _ in $(seq 100); do [ -s "$SERVE_DIR/addr2" ] && break; sleep 0.1; done
[ -s "$SERVE_DIR/addr2" ] || { echo "restarted supervisor never bound"; exit 1; }
timeout 120 cargo run --release -q -p thermorl-bench --bin serve -- \
    bench --addr-file "$SERVE_DIR/addr2" --dies 8 --requests 500 --rate 4000 \
    --out "$SERVE_DIR/bench_after_restart.json" > /dev/null
grep -q '"resumed_dies":8' "$SERVE_DIR/bench_after_restart.json" \
    || { echo "restarted supervisor did not resume the 8 die sessions"; exit 1; }

echo "== serve bench --quick (regenerate BENCH_serve.json) =="
timeout 120 cargo run --release -q -p thermorl-bench --bin serve -- \
    bench --addr-file "$SERVE_DIR/addr2" --quick --out BENCH_serve.json > /dev/null
grep -q '"slowest_trace":"' BENCH_serve.json \
    || { echo "BENCH_serve.json missing the slowest-request trace id"; exit 1; }

echo "== serve trace verb (live SLO + slowest-trace table) =="
# The restarted supervisor runs with --trace, so its trace report must
# carry a populated SLO summary and per-trace rows for the load above.
timeout 60 cargo run --release -q -p thermorl-bench --bin serve -- \
    trace --addr-file "$SERVE_DIR/addr2" --max 8 > "$SERVE_DIR/trace_report.json"
python3 - "$SERVE_DIR/trace_report.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("slo", "slowest", "recent"):
    assert key in doc, f"trace report missing {key}: {sorted(doc)}"
slo = doc["slo"]
for key in ("count", "p50_ns", "p99_ns", "objective_ns", "target",
            "over_objective", "error_rate", "budget_burn"):
    assert key in slo, f"slo summary missing {key}: {sorted(slo)}"
assert slo["count"] > 0, "SLO tracker counted no serve.request latencies"
assert doc["slowest"], "no slowest-trace rows"
for row in doc["slowest"]:
    for key in ("trace_id", "root", "start_us", "dur_us", "spans"):
        assert key in row, f"trace row missing {key}: {sorted(row)}"
    int(row["trace_id"], 16)
print(f"trace report OK: slo.count={slo['count']}, "
      f"{len(doc['slowest'])} slowest rows")
EOF
timeout 60 cargo run --release -q -p thermorl-bench --bin serve -- \
    shutdown --addr-file "$SERVE_DIR/addr2"
wait "$SERVE_PID"

echo "== trace selftest (client -> serve -> shard -> batch chain + Chrome schema) =="
# In-process supervisor + loopback load with tracing on: exits nonzero
# unless at least one trace spans the whole distributed chain, then the
# exported Chrome trace must satisfy the trace-event schema Perfetto and
# chrome://tracing expect.
timeout 300 cargo run --release -q -p thermorl-bench --bin serve -- \
    selftest-trace --out "$SERVE_DIR/chrome_trace.json"
python3 - "$SERVE_DIR/chrome_trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents missing or empty"
assert doc.get("displayTimeUnit") == "ms", doc.get("displayTimeUnit")
complete = 0
for e in events:
    for key in ("name", "ph", "ts", "pid", "tid"):
        assert key in e, f"event missing {key}: {e}"
    if e["ph"] == "X":
        assert e.get("dur", 0) >= 1, f"complete event without dur: {e}"
        complete += 1
assert complete > 0, "no complete (ph=X) span events"
names = {e["name"] for e in events}
for span in ("client.observe", "serve.request", "shard.observe",
             "thermal.batch_step"):
    assert span in names, f"chrome trace missing {span} spans"
print(f"chrome trace OK: {len(events)} events, {complete} complete spans")
EOF

echo "CI OK"
